//! `thinaird` — the thinair node daemon.
//!
//! Runs the HotNets'12 secret-agreement protocol over real UDP sockets.
//! One process per node; the roster is a static list of peer addresses
//! indexed by node id.
//!
//! ```text
//! # in-process smoke test: 1 coordinator + 3 terminals over loopback
//! thinaird demo --nodes 4 --sessions 2
//!
//! # the same round as four real processes (4 shells):
//! thinaird coordinator --node 0 --peers 127.0.0.1:7400,127.0.0.1:7401,127.0.0.1:7402,127.0.0.1:7403
//! thinaird terminal    --node 1 --peers 127.0.0.1:7400,127.0.0.1:7401,127.0.0.1:7402,127.0.0.1:7403
//! thinaird terminal    --node 2 --peers 127.0.0.1:7400,127.0.0.1:7401,127.0.0.1:7402,127.0.0.1:7403
//! thinaird terminal    --node 3 --peers 127.0.0.1:7400,127.0.0.1:7401,127.0.0.1:7402,127.0.0.1:7403
//! ```
//!
//! Every node prints its derived group secret key; all prints must be
//! identical. Argument parsing is hand-rolled: the build environment is
//! offline, so `clap` is unavailable.
//!
//! `thinaird bench-scenario` additionally drives the `thinair-scenario`
//! experiment engine: a deterministic sweep over many concurrent
//! sessions per config, scored against the closed-form model, written to
//! `BENCH_scenarios.json`.

use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use thinair_core::estimate::{Estimator, Tuning};
use thinair_core::round::XSchedule;
use thinair_net::demo::{loopback_sessions, task_seed};
use thinair_net::node::Node;
use thinair_net::rt;
use thinair_net::session::SessionConfig;
use thinair_net::telemetry;
use thinair_net::transport::UdpTransport;
use thinair_net::{
    bind_shard_sockets, run_sharded_serve, ServeLimits, ServeStats, Server, ShardedServeOptions,
};
use thinair_scenario::ServeBackend;
use thinair_scenario::{
    check_trace, explore_default_spec, explore_range_specs, explore_smoke_spec,
    explore_summary_table, full_grid, run_explore_specs, run_serve_wave, run_soak_specs, run_specs,
    serve_ramp_specs, serve_smoke_specs, serve_summary_table, smoke_specs, soak_smoke_specs,
    soak_specs, soak_summary_table, summary_table, write_explore_json, write_json,
    write_serve_json, write_soak_json,
};

const USAGE: &str = "\
thinaird — thinair node daemon (secret agreement over UDP)

USAGE:
    thinaird <coordinator|terminal> --node <ID> --peers <A0,A1,...> [OPTIONS]
    thinaird serve --node <ID> --peers <A0,A1,...> [OPTIONS]
    thinaird demo [OPTIONS]
    thinaird bench-scenario [--smoke] [--out <PATH>] [--seed <S>] [--sessions <K>]
    thinaird bench-soak [--smoke] [--out <PATH>] [--seed <S>] [--sessions <K>]
    thinaird bench-serve [--smoke] [--out <PATH>] [--seed <S>] [--wave <NAME>]
                         [--max-p99-ms <MS>] [--workers <N>]
    thinaird explore [--smoke] [--terminals <N>] [--depth <D>] [--drop-budget <K>]
                     [--seed <S> | --seed-range <A..B>] [--out <PATH>]
    thinaird trace-validate <FILE.jsonl>...
    thinaird lint [ROOT]

ROLES:
    coordinator        run node <ID> as the round coordinator (Alice)
    terminal           run node <ID> as a terminal (one session batch, then exit)
    serve              run node <ID> as a long-lived terminal daemon:
                       every session a coordinator starts is auto-admitted
                       (capacity permitting), multiplexed over one socket,
                       idle-evicted, and GC'd on termination
    demo               run all nodes in-process over loopback sockets
    bench-scenario     sweep scenario configs (many concurrent simulated
                       sessions each), compare measured efficiency against
                       the closed-form model, write BENCH_scenarios.json
    bench-soak         drive hundreds of sessions across an adversarial
                       fault grid (reorder, duplication, corruption, delay
                       jitter, partitions, crash, late join), audit the
                       safety invariant per session, write BENCH_soak.json
    bench-serve        ramp concurrent sessions (100 -> 1k -> 5k -> 7.5k
                       overload full, smaller with --smoke) against
                       in-process serve daemons over loopback UDP and a
                       chaos-faulted simulator; the overload wave caps
                       daemon admission below the offered load so the
                       surplus is paced through Busy retries; audit every
                       session, measure sessions/sec + p50..p999 latency +
                       per-phase telemetry histograms + executor polls
                       saved, write BENCH_serve.json
    explore            exhaustively enumerate the delivery interleavings and
                       drop placements of one small session over the real
                       state machines (stepped transport + virtual clock),
                       with partial-order reduction and fingerprint pruning;
                       audit every schedule against the safety invariant,
                       shrink any violation to a minimal frame-level
                       counterexample, write BENCH_explore.json; exits
                       nonzero on violation
    trace-validate     check an exported telemetry trace (--trace-out):
                       every line parses as flat JSON, the required fields
                       and per-kind tails are present, and every session
                       span opens with a session_start line
    lint               run the workspace invariant rules (determinism,
                       unsafe confinement, panic-free hot paths, telemetry
                       names, wire tags) over ROOT (default `.`); exits
                       nonzero on unallowed findings

OPTIONS:
    --node <ID>        this node's id (index into --peers)       [required for roles]
    --peers <LIST>     comma-separated addr:port per node id     [required for roles]
    --bind <ADDR>      bind address (default: the --peers entry for --node);
                       must be the address peers see, or your frames are dropped
    --nodes <N>        demo only: number of nodes                 [default: 4]
    --sessions <K>     concurrent sessions to run                 [default: 1]
    --session-id <S>   id of the first session                    [default: 1]
    --n-packets <N>    x-packets broadcast by the coordinator     [default: 60]
    --payload-len <B>  payload bytes per packet                   [default: 32]
    --drop <P>         injected data-plane erasure probability    [default: 0.4]
    --drop-seed <S>    erasure-injection seed (must match across nodes) [default: 7]
    --seed <S>         local randomness seed                      [default: from entropy]
    --coordinator-id <ID>  which node coordinates                 [default: 0]
    --deadline-ms <MS> session deadline                           [default: 30000]
    --estimator <E>    leave-one-out | fraction:<F>               [default: leave-one-out]
    --max-sessions <N> serve: admission cap on concurrent sessions [default: 8192]
    --workers <N>      serve: shard the daemon across N worker threads, each
                       its own runtime + epoll reactor + SO_REUSEPORT socket
                       + session registry, dispatching by session-id hash
                       (--max-sessions splits across shards)    [default: 1]
                       bench-serve: force the workers axis of every
                       UDP-loopback wave
    --idle-ms <MS>     serve: evict sessions idle this long        [default: 10000]
    --stats-every-ms <MS>  serve: every MS, dump the interval's telemetry
                       delta (counters/gauges/histogram summaries, JSON)
                       to stderr
    --trace-out <PATH> serve: export per-session span/event traces as
                       JSONL to PATH (flushed periodically and on exit)
    --run-for-ms <MS>  serve: stop the daemon after MS (smoke/CI runs;
                       default: run until killed)
    --smoke            bench-*: the small CI sweep instead of the full grid
    --out <PATH>       bench-*: artifact path [default:
                       BENCH_scenarios.json / BENCH_soak.json / BENCH_serve.json]
    --wave <NAME>      bench-serve: run only waves whose name contains NAME
                       (error if nothing matches)
    --terminals <N>    explore: protocol nodes incl. the coordinator [default: 3]
    --depth <D>        explore: decision horizon (first D scheduling
                       decisions branch)                     [default: 15 / 12 smoke]
    --drop-budget <K>  explore: most explorer-placed drops per schedule
                                                             [default: 2 / 1 smoke]
    --seed-range <A..B> explore: one exploration per seed in [A, B)
    --max-p99-ms <MS>  bench-serve: exit nonzero if any executed wave's p99
                       session latency exceeds MS (CI latency gate)
    -h, --help         print this help
";

#[derive(Debug)]
struct Options {
    node: Option<u8>,
    peers: Vec<SocketAddr>,
    bind: Option<SocketAddr>,
    nodes: u8,
    sessions: u64,
    sessions_given: bool,
    session_id: u64,
    n_packets: usize,
    payload_len: usize,
    drop: f64,
    drop_seed: u64,
    seed: u64,
    seed_given: bool,
    coordinator_id: u8,
    deadline_ms: u64,
    estimator: Estimator,
    max_sessions: usize,
    workers: usize,
    workers_given: bool,
    idle_ms: u64,
    stats_every_ms: Option<u64>,
    trace_out: Option<String>,
    run_for_ms: Option<u64>,
    smoke: bool,
    out: Option<String>,
    wave: Option<String>,
    max_p99_ms: Option<f64>,
    terminals: Option<u8>,
    depth: Option<usize>,
    drop_budget: Option<usize>,
    seed_range: Option<(u64, u64)>,
}

impl Default for Options {
    fn default() -> Self {
        // Default seed from OS entropy (`RandomState` keys come from the
        // OS CSPRNG), not from the clock: x payloads are the secret's
        // entropy source, so a guessable seed would let an eavesdropper
        // regenerate them offline. NOTE: the offline `rand` stand-in is
        // a plain xoshiro PRNG — production deployments should swap in
        // a CSPRNG for payload generation.
        use std::hash::{BuildHasher, Hasher};
        let rs = std::collections::hash_map::RandomState::new();
        let mut seed = 0u64;
        for i in 0..2u64 {
            let mut h = rs.build_hasher();
            h.write_u64(i);
            seed = seed.rotate_left(32) ^ h.finish();
        }
        Options {
            node: None,
            peers: Vec::new(),
            bind: None,
            nodes: 4,
            sessions: 1,
            sessions_given: false,
            session_id: 1,
            n_packets: 60,
            payload_len: 32,
            drop: 0.4,
            drop_seed: 7,
            seed,
            seed_given: false,
            coordinator_id: 0,
            deadline_ms: 30_000,
            estimator: Estimator::LeaveOneOut(Tuning::default()),
            max_sessions: 8192,
            workers: 1,
            workers_given: false,
            idle_ms: 10_000,
            stats_every_ms: None,
            trace_out: None,
            run_for_ms: None,
            smoke: false,
            out: None,
            wave: None,
            max_p99_ms: None,
            terminals: None,
            depth: None,
            drop_budget: None,
            seed_range: None,
        }
    }
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut o = Options::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = || -> Result<&String, String> {
            it.next().ok_or_else(|| format!("missing value for {arg}"))
        };
        match arg.as_str() {
            "--node" => o.node = Some(num(take()?)?),
            "--peers" => {
                o.peers = take()?
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|e| format!("bad peer {s}: {e}")))
                    .collect::<Result<_, _>>()?;
            }
            "--bind" => o.bind = Some(take()?.parse().map_err(|e| format!("bad bind: {e}"))?),
            "--nodes" => o.nodes = num(take()?)?,
            "--sessions" => {
                o.sessions = num(take()?)?;
                o.sessions_given = true;
            }
            "--session-id" => o.session_id = num(take()?)?,
            "--n-packets" => o.n_packets = num(take()?)?,
            "--payload-len" => o.payload_len = num(take()?)?,
            "--drop" => o.drop = fnum(take()?)?,
            "--drop-seed" => o.drop_seed = num(take()?)?,
            "--seed" => {
                o.seed = num(take()?)?;
                o.seed_given = true;
            }
            "--max-sessions" => o.max_sessions = num(take()?)?,
            "--workers" => {
                o.workers = num(take()?)?;
                o.workers_given = true;
                if o.workers == 0 {
                    return Err("--workers must be at least 1".into());
                }
            }
            "--idle-ms" => o.idle_ms = num(take()?)?,
            "--stats-every-ms" => o.stats_every_ms = Some(num(take()?)?),
            "--trace-out" => o.trace_out = Some(take()?.clone()),
            "--run-for-ms" => o.run_for_ms = Some(num(take()?)?),
            "--smoke" => o.smoke = true,
            "--out" => o.out = Some(take()?.clone()),
            "--wave" => o.wave = Some(take()?.clone()),
            "--terminals" => o.terminals = Some(num(take()?)?),
            "--depth" => o.depth = Some(num(take()?)?),
            "--drop-budget" => o.drop_budget = Some(num(take()?)?),
            "--seed-range" => {
                let v = take()?;
                let (a, b) = v
                    .split_once("..")
                    .ok_or_else(|| format!("bad seed range {v}: expected A..B"))?;
                let range = (num(a)?, num(b)?);
                if range.0 >= range.1 {
                    return Err(format!("bad seed range {v}: empty (A must be < B)"));
                }
                o.seed_range = Some(range);
            }
            "--max-p99-ms" => o.max_p99_ms = Some(fnum(take()?)?),
            "--coordinator-id" => o.coordinator_id = num(take()?)?,
            "--deadline-ms" => o.deadline_ms = num(take()?)?,
            "--estimator" => {
                let v = take()?;
                o.estimator = if v == "leave-one-out" {
                    Estimator::LeaveOneOut(Tuning::default())
                } else if let Some(f) = v.strip_prefix("fraction:") {
                    Estimator::FixedFraction { fraction: fnum(f)? }
                } else {
                    return Err(format!("unknown estimator {v}"));
                };
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(o)
}

fn num<T: std::str::FromStr>(s: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    s.parse().map_err(|e| format!("bad number {s}: {e}"))
}

fn fnum(s: &str) -> Result<f64, String> {
    s.parse().map_err(|e| format!("bad float {s}: {e}"))
}

fn session_config(o: &Options, n_nodes: u8) -> SessionConfig {
    SessionConfig {
        n_nodes,
        coordinator: o.coordinator_id,
        schedule: XSchedule::CoordinatorOnly(o.n_packets),
        payload_len: o.payload_len,
        estimator: o.estimator.clone(),
        drop_prob: o.drop,
        drop_seed: o.drop_seed,
        deadline: Duration::from_millis(o.deadline_ms),
        ..SessionConfig::default()
    }
}

fn key_hex(outcome: &thinair_net::SessionOutcome) -> String {
    match outcome.key() {
        Some(k) => k.iter().map(|b| format!("{b:02x}")).collect(),
        None => "(no secret this round: L = 0)".into(),
    }
}

fn check_roster(peers: &[SocketAddr]) -> Result<(), String> {
    if peers.len() < 2 {
        return Err("--peers must list at least two addresses".into());
    }
    // `SessionConfig::n_nodes` is a u8 (node ids ride the wire as u8):
    // reject oversized rosters at startup instead of wrapping to a
    // 0-node session config that fails every round.
    if peers.len() > u8::MAX as usize {
        return Err(format!("--peers lists {} addresses; at most 255 supported", peers.len()));
    }
    Ok(())
}

fn run_role(role: &str, o: Options) -> Result<(), String> {
    let node = o.node.ok_or("--node is required")?;
    check_roster(&o.peers)?;
    if node as usize >= o.peers.len() {
        return Err("--node must index into --peers".into());
    }
    let is_coordinator = node == o.coordinator_id;
    if is_coordinator != (role == "coordinator") {
        return Err(format!(
            "node {node} {} the coordinator id {}; pick the matching subcommand",
            if is_coordinator { "is" } else { "is not" },
            o.coordinator_id
        ));
    }
    let cfg = session_config(&o, o.peers.len() as u8);
    let bind = o.bind.unwrap_or(o.peers[node as usize]);
    let transport =
        UdpTransport::bind(bind, o.peers.clone(), node).map_err(|e| format!("bind {bind}: {e}"))?;
    let node_handle = Node::new(transport);
    eprintln!(
        "thinaird: node {node} ({role}) on {bind}, {} peers, {} session(s), digest {:#018x}",
        o.peers.len(),
        o.sessions,
        cfg.digest()
    );
    let outcomes = rt::block_on(async {
        node_handle.start_pump();
        // Sessions run concurrently, multiplexed by session id over the
        // one socket — the same shape a serve daemon handles them in.
        let mut tasks = Vec::with_capacity(o.sessions as usize);
        for s in 0..o.sessions {
            let session = o.session_id + s;
            let seed = task_seed(o.seed, session, node);
            let node_handle = node_handle.clone();
            let cfg = cfg.clone();
            tasks.push(rt::spawn(async move {
                if is_coordinator {
                    node_handle.coordinate(session, cfg, seed).await
                } else {
                    node_handle.participate(session, cfg, seed).await
                }
            }));
        }
        let mut out = Vec::new();
        for (s, t) in tasks.into_iter().enumerate() {
            let session = o.session_id + s as u64;
            out.push(t.await.map_err(|e| format!("session {session}: {e}"))?);
        }
        Ok::<_, String>(out)
    })?;
    let mut aborted = 0usize;
    for out in &outcomes {
        match &out.abort {
            Some(reason) => {
                aborted += 1;
                println!("session {:#x} node {} ABORTED: {reason}", out.session, out.node);
            }
            None => println!(
                "session {:#x} node {} L={} M={} N={} key {}",
                out.session,
                out.node,
                out.l,
                out.m,
                out.n_packets,
                key_hex(out)
            ),
        }
    }
    if aborted > 0 {
        return Err(format!("{aborted} session(s) aborted"));
    }
    Ok(())
}

fn run_serve(o: Options) -> Result<(), String> {
    let node = o.node.ok_or("--node is required")?;
    check_roster(&o.peers)?;
    if node as usize >= o.peers.len() {
        return Err("--node must index into --peers".into());
    }
    if node == o.coordinator_id {
        return Err("serve runs terminals; the coordinator initiates rounds".into());
    }
    let cfg = session_config(&o, o.peers.len() as u8);
    let bind = o.bind.unwrap_or(o.peers[node as usize]);
    let limits = ServeLimits {
        max_sessions: o.max_sessions,
        idle_timeout: Duration::from_millis(o.idle_ms),
        ..ServeLimits::default()
    };
    if o.workers > 1 {
        return run_serve_sharded(&o, node, cfg, bind, limits);
    }
    let transport =
        UdpTransport::bind(bind, o.peers.clone(), node).map_err(|e| format!("bind {bind}: {e}"))?;
    eprintln!(
        "thinaird serve: node {node} on {bind}, {} peers, cap {} sessions, idle evict {} ms, \
         digest {:#018x}",
        o.peers.len(),
        o.max_sessions,
        o.idle_ms,
        cfg.digest()
    );
    // Observability: the daemon's state machines all run on this
    // thread's executor, so the thread-local registry sees every
    // session. Tracing and the periodic dumps are both opt-in.
    if let Some(path) = &o.trace_out {
        std::fs::write(path, "").map_err(|e| format!("create {path}: {e}"))?;
        telemetry::enable_trace(telemetry::DEFAULT_TRACE_CAPACITY);
    }
    if o.stats_every_ms.is_some() {
        telemetry::set_timing(true);
    }
    let mut server = Server::new(thinair_net::SharedTransport::new(transport), cfg, o.seed, limits);
    let handle = server.handle();
    let stop_handle = handle.clone();
    let mut outcomes = server.outcomes();
    let stats_every_ms = o.stats_every_ms;
    let trace_out = o.trace_out.clone();
    let run_for_ms = o.run_for_ms;
    let result: std::io::Result<_> = rt::block_on(async move {
        rt::spawn(async move {
            while let Some(out) = outcomes.recv().await {
                match &out.abort {
                    Some(reason) => {
                        println!("session {:#x} node {} ABORTED: {reason}", out.session, out.node)
                    }
                    None => println!(
                        "session {:#x} node {} L={} M={} key {}",
                        out.session,
                        out.node,
                        out.l,
                        out.m,
                        key_hex(&out)
                    ),
                }
            }
        });
        if let Some(ms) = run_for_ms {
            rt::spawn(async move {
                rt::sleep(Duration::from_millis(ms)).await;
                stop_handle.stop();
            });
        }
        if stats_every_ms.is_some() || trace_out.is_some() {
            rt::spawn(async move {
                // Trace flushes ride the stats cadence (default 500 ms)
                // so a killed daemon loses at most one interval.
                let tick = Duration::from_millis(stats_every_ms.unwrap_or(500));
                let mut last = telemetry::snapshot();
                loop {
                    rt::sleep(tick).await;
                    if let Some(path) = &trace_out {
                        flush_trace(path);
                    }
                    if stats_every_ms.is_some() {
                        let now = telemetry::snapshot();
                        eprintln!("thinaird stats: {}", now.delta(&last).to_json());
                        last = now;
                    }
                }
            });
        }
        server.run().await
    });
    if let Some(path) = &o.trace_out {
        flush_trace(path);
        let dropped = telemetry::trace_dropped();
        if dropped > 0 {
            eprintln!("thinaird serve: trace {path}: {dropped} event(s) lost to ring overflow");
        }
        eprintln!("thinaird serve: trace written to {path}");
    }
    let stats = handle.stats();
    eprintln!(
        "thinaird serve: exiting; admitted {} completed {} aborted {} evicted {} rejected {}",
        stats.admitted, stats.completed, stats.aborted, stats.evicted, stats.rejected
    );
    result.map(|_| ()).map_err(|e| format!("serve loop failed: {e}"))
}

/// `serve --workers N`: the daemon sharded across N worker threads —
/// one `SO_REUSEPORT` socket, executor (epoll reactor), registry and
/// flow budget per worker, with session-id-hash dispatch and
/// cross-shard frame forwarding. Blocks until `--run-for-ms` elapses
/// (or forever, until killed).
fn run_serve_sharded(
    o: &Options,
    node: u8,
    cfg: SessionConfig,
    bind: SocketAddr,
    limits: ServeLimits,
) -> Result<(), String> {
    if o.trace_out.is_some() {
        // The trace ring is per worker thread and the export cadence is
        // wired into the single-runtime loop; refuse rather than write
        // a silently incomplete trace.
        return Err("--trace-out requires --workers 1".into());
    }
    let sockets = bind_shard_sockets(bind, o.workers).map_err(|e| format!("bind {bind}: {e}"))?;
    eprintln!(
        "thinaird serve: node {node} on {bind}, {} peers, {} workers, cap {} sessions \
         ({} per shard), idle evict {} ms, digest {:#018x}",
        o.peers.len(),
        o.workers,
        o.max_sessions,
        o.max_sessions.div_ceil(o.workers).max(1),
        o.idle_ms,
        cfg.digest()
    );
    let stop = Arc::new(AtomicBool::new(false));
    if let Some(ms) = o.run_for_ms {
        let stop = stop.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(ms));
            stop.store(true, Ordering::Relaxed);
        });
    }
    if let Some(every) = o.stats_every_ms {
        // The workers' registries are per-thread; the merged
        // process-wide gather is what the periodic dump wants.
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut last = telemetry::snapshot_all();
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(every));
                let now = telemetry::snapshot_all();
                eprintln!("thinaird stats: {}", now.delta(&last).to_json());
                last = now;
            }
        });
    }
    let opts = ShardedServeOptions {
        cfg,
        seed: o.seed,
        limits,
        collect_outcomes: false,
        on_outcome: Some(Arc::new(|shard, out| match &out.abort {
            Some(reason) => println!(
                "session {:#x} node {} shard {shard} ABORTED: {reason}",
                out.session, out.node
            ),
            None => println!(
                "session {:#x} node {} shard {shard} L={} M={} key {}",
                out.session,
                out.node,
                out.l,
                out.m,
                key_hex(out)
            ),
        })),
        timing: o.stats_every_ms.is_some(),
    };
    let reports = run_sharded_serve(sockets, o.peers.clone(), node, opts, stop)
        .map_err(|e| format!("serve loop failed: {e}"))?;
    let mut stats = ServeStats::default();
    for r in &reports {
        stats.absorb(&r.stats);
    }
    eprintln!(
        "thinaird serve: exiting; admitted {} completed {} aborted {} evicted {} rejected {} \
         across {} shards",
        stats.admitted,
        stats.completed,
        stats.aborted,
        stats.evicted,
        stats.rejected,
        reports.len()
    );
    Ok(())
}

/// Drains the thread's trace ring and appends the events to `path` as
/// JSONL. Errors are reported, not fatal: a failed flush must not take
/// the daemon down.
fn flush_trace(path: &str) {
    use std::io::Write;
    let events = telemetry::take_events();
    if events.is_empty() {
        return;
    }
    let mut buf = String::with_capacity(events.len() * 96);
    for ev in &events {
        buf.push_str(&ev.to_jsonl());
        buf.push('\n');
    }
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| f.write_all(buf.as_bytes()));
    if let Err(e) = written {
        eprintln!("thinaird serve: trace write {path}: {e}");
    }
}

fn run_trace_validate(files: &[String]) -> Result<(), String> {
    if files.is_empty() || files.iter().any(|f| f.starts_with('-')) {
        return Err("trace-validate takes one or more <FILE.jsonl> paths".into());
    }
    let mut failed = 0usize;
    for path in files {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        let report = check_trace(&text);
        println!("{path}: {}", report.summary());
        for v in &report.violations {
            eprintln!("  {v}");
        }
        if report.violation_count > report.violations.len() {
            eprintln!("  ... and {} more", report.violation_count - report.violations.len());
        }
        if !report.ok() {
            failed += 1;
        }
    }
    if failed > 0 {
        return Err(format!("{failed} trace file(s) violate the schema"));
    }
    Ok(())
}

fn run_bench_serve(o: Options) -> Result<(), String> {
    // Reproducible by default, like the other benches.
    let seed = if o.seed_given { o.seed } else { 1 };
    let mut specs = if o.smoke { serve_smoke_specs(seed) } else { serve_ramp_specs(seed) };
    if let Some(filter) = &o.wave {
        specs.retain(|s| s.name.contains(filter.as_str()));
        if specs.is_empty() {
            return Err(format!("--wave {filter} matches no wave in this ramp"));
        }
    }
    if o.workers_given {
        // Force the workers axis of every UDP-loopback wave (the sim
        // backend has no kernel to steer SO_REUSEPORT packets, so sim
        // waves keep their single runtime).
        for spec in &mut specs {
            if spec.backend == ServeBackend::UdpLoopback {
                spec.workers = o.workers;
            }
        }
    }
    eprintln!(
        "thinaird bench-serve: {} wave(s), up to {} concurrent sessions, seed {seed}",
        specs.len(),
        specs.iter().map(|s| s.concurrency).max().unwrap_or(0),
    );
    // Waves run serially: each saturates the machine by design, and the
    // latency numbers would be meaningless under co-scheduled waves.
    let mut results = Vec::with_capacity(specs.len());
    for spec in &specs {
        eprintln!("  wave {} ({} sessions)...", spec.name, spec.concurrency);
        results.push(run_serve_wave(spec).map_err(|e| format!("wave {}: {e}", spec.name))?);
    }
    print!("{}", serve_summary_table(&results));
    let violations: u32 = results.iter().map(|r| r.violations).sum();
    let out = o.out.unwrap_or_else(|| "BENCH_serve.json".into());
    write_serve_json(std::path::Path::new(&out), &results)
        .map_err(|e| format!("write {out}: {e}"))?;
    eprintln!("wrote {out}");
    if violations > 0 {
        return Err(format!("SAFETY INVARIANT VIOLATED in {violations} session(s)"));
    }
    // The daemons must never shed a Start silently: every capacity
    // rejection is answered with an explicit Busy reply.
    for r in &results {
        if r.busy < r.rejected {
            return Err(format!(
                "wave {}: {} rejection(s) but only {} Busy replies — silent shed",
                r.spec.name, r.rejected, r.busy
            ));
        }
    }
    if let Some(bound) = o.max_p99_ms {
        for r in &results {
            if r.latency_ms_p99 > bound {
                return Err(format!(
                    "wave {}: p99 {:.1} ms exceeds the --max-p99-ms bound {bound:.1}",
                    r.spec.name, r.latency_ms_p99
                ));
            }
        }
    }
    Ok(())
}

fn run_demo(o: Options) -> Result<(), String> {
    if o.nodes < 2 {
        return Err("--nodes must be at least 2".into());
    }
    let cfg = session_config(&o, o.nodes);
    let sessions: Vec<u64> = (0..o.sessions).map(|s| o.session_id + s).collect();
    eprintln!(
        "thinaird demo: {} nodes, {} session(s), {} x-packets, drop {:.2}",
        o.nodes, o.sessions, o.n_packets, o.drop
    );
    let all = loopback_sessions(&cfg, &sessions, o.seed).map_err(|e| e.to_string())?;
    let mut ok = true;
    for outcomes in &all {
        for out in outcomes {
            match &out.abort {
                Some(reason) => {
                    println!("session {:#x} node {} ABORTED: {reason}", out.session, out.node)
                }
                None => println!(
                    "session {:#x} node {} L={} M={} key {}",
                    out.session,
                    out.node,
                    out.l,
                    out.m,
                    key_hex(out)
                ),
            }
        }
        let first = &outcomes[0];
        if outcomes.iter().any(|t| t.abort.is_some()) {
            eprintln!("session {:#x}: ABORTED", first.session);
            ok = false;
        } else if !outcomes.iter().all(|t| t.secret == first.secret) {
            eprintln!("session {:#x}: SECRET MISMATCH", first.session);
            ok = false;
        } else if first.l > 0 {
            eprintln!(
                "session {:#x}: all {} nodes agree on a {}-packet secret",
                first.session,
                outcomes.len(),
                first.l
            );
        } else {
            eprintln!("session {:#x}: no secret extractable this round (L = 0)", first.session);
        }
    }
    if ok {
        Ok(())
    } else {
        Err("secret mismatch across nodes".into())
    }
}

fn run_bench_scenario(o: Options) -> Result<(), String> {
    // Benchmarks must be reproducible: default to a fixed sweep seed
    // (the demo/daemon default draws from OS entropy instead).
    let seed = if o.seed_given { o.seed } else { 1 };
    let sessions = o.sessions.clamp(1, u32::MAX as u64) as u32;
    let mut specs = if o.smoke { smoke_specs(seed) } else { full_grid(seed, sessions).expand() };
    if o.smoke && o.sessions_given {
        // The smoke set fixes its configs but the session count is the
        // user's to scale.
        for spec in &mut specs {
            spec.sessions = sessions;
        }
    }
    eprintln!(
        "thinaird bench-scenario: {} config(s), {} session(s) each, seed {seed}",
        specs.len(),
        specs.first().map(|s| s.sessions).unwrap_or(0),
    );
    let results = run_specs(&specs);
    let mut ok = Vec::with_capacity(results.len());
    for (spec, result) in specs.iter().zip(results) {
        match result {
            Ok(r) => ok.push(r),
            Err(e) => return Err(format!("scenario {}: {e}", spec.name)),
        }
    }
    print!("{}", summary_table(&ok));
    let out = o.out.unwrap_or_else(|| "BENCH_scenarios.json".into());
    write_json(std::path::Path::new(&out), &ok).map_err(|e| format!("write {out}: {e}"))?;
    eprintln!("wrote {out}");
    Ok(())
}

fn run_bench_soak(o: Options) -> Result<(), String> {
    // Reproducible by default, like bench-scenario.
    let seed = if o.seed_given { o.seed } else { 1 };
    let sessions = o.sessions.clamp(1, u32::MAX as u64) as u32;
    let mut specs = if o.smoke { soak_smoke_specs(seed) } else { soak_specs(seed, 60) };
    if o.sessions_given {
        for spec in &mut specs {
            spec.sessions = sessions;
        }
    }
    let total: u32 = specs.iter().map(|s| s.sessions).sum();
    eprintln!(
        "thinaird bench-soak: {} fault cell(s), {total} session(s) total, seed {seed}",
        specs.len(),
    );
    let results = run_soak_specs(&specs);
    let mut ok = Vec::with_capacity(results.len());
    for (spec, result) in specs.iter().zip(results) {
        match result {
            Ok(r) => ok.push(r),
            Err(e) => return Err(format!("soak cell {}: {e}", spec.name)),
        }
    }
    print!("{}", soak_summary_table(&ok));
    let violations: u32 = ok.iter().map(|r| r.violations).sum();
    let out = o.out.unwrap_or_else(|| "BENCH_soak.json".into());
    write_soak_json(std::path::Path::new(&out), &ok).map_err(|e| format!("write {out}: {e}"))?;
    eprintln!("wrote {out}");
    if violations > 0 {
        return Err(format!("SAFETY INVARIANT VIOLATED in {violations} session(s)"));
    }
    Ok(())
}

fn run_explore(o: Options) -> Result<(), String> {
    // Reproducible by default, like the benches.
    let seed = if o.seed_given { o.seed } else { 1 };
    let mut base = if o.smoke { explore_smoke_spec(seed) } else { explore_default_spec(seed) };
    if let Some(t) = o.terminals {
        base.terminals = t;
    }
    if let Some(d) = o.depth {
        base.depth = d;
    }
    if let Some(k) = o.drop_budget {
        base.drop_budget = k;
    }
    let specs = match o.seed_range {
        Some((a, b)) => explore_range_specs(&base, a..b),
        None => vec![base],
    };
    eprintln!(
        "thinaird explore: {} exploration(s), terminals {}, depth {}, drop budget {}",
        specs.len(),
        specs[0].terminals,
        specs[0].depth,
        specs[0].drop_budget,
    );
    let results = run_explore_specs(&specs);
    let mut ok = Vec::with_capacity(results.len());
    for (spec, result) in specs.iter().zip(results) {
        match result {
            Ok(r) => ok.push(r),
            Err(e) => return Err(format!("exploration {}: {e}", spec.name)),
        }
    }
    print!("{}", explore_summary_table(&ok));
    let out = o.out.unwrap_or_else(|| "BENCH_explore.json".into());
    write_explore_json(std::path::Path::new(&out), &ok).map_err(|e| format!("write {out}: {e}"))?;
    eprintln!("wrote {out}");
    // Surface every shrunk counterexample: the causal explanation on
    // stderr, the frame-level telemetry trace as a sibling artifact
    // (CI uploads both alongside the bench JSON).
    let mut violations = 0u64;
    for r in &ok {
        for (i, cx) in r.violations.iter().enumerate() {
            violations += 1;
            eprintln!("\n=== counterexample {} #{i} ===\n{}", r.spec.name, cx.explanation);
            let trace_path = format!("{out}.{}.cx{i}.jsonl", r.spec.name);
            std::fs::write(&trace_path, &cx.trace_jsonl)
                .map_err(|e| format!("write {trace_path}: {e}"))?;
            eprintln!("wrote {trace_path}");
        }
        if !r.exhausted {
            eprintln!(
                "warning: {} hit its execution budget before exhausting the tree",
                r.spec.name
            );
        }
    }
    if violations > 0 {
        return Err(format!("SAFETY INVARIANT VIOLATED in {violations} schedule(s)"));
    }
    Ok(())
}

/// `thinaird lint [ROOT]` — run the workspace invariant rules
/// ([`thinair_lint`]) over `ROOT` (default `.`). Same findings and exit
/// convention as the standalone `thinair-lint` binary: `0` clean, `1`
/// unallowed findings, `2` bad invocation or unreadable root.
fn run_lint(rest: &[String]) -> ExitCode {
    let root = match rest {
        [] => std::path::PathBuf::from("."),
        [dir] => std::path::PathBuf::from(dir),
        _ => {
            eprintln!("thinaird: lint takes at most one root directory");
            return ExitCode::from(2);
        }
    };
    let files = match thinair_lint::load_workspace(&root) {
        Ok(files) => files,
        Err(e) => {
            eprintln!("thinaird: cannot read {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let findings = thinair_lint::check_files(&files);
    if findings.is_empty() {
        println!(
            "thinaird lint: clean ({} files, {} rules)",
            files.len(),
            thinair_lint::rules::RULE_IDS.len()
        );
        ExitCode::SUCCESS
    } else {
        println!("{}", thinair_lint::render(&findings));
        println!("thinaird lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "-h" || a == "--help") || args.is_empty() {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let (cmd, rest) = args.split_first().expect("nonempty checked");
    // trace-validate takes positional file paths, not options.
    if cmd == "trace-validate" {
        return match run_trace_validate(rest) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("thinaird: {e}");
                ExitCode::FAILURE
            }
        };
    }
    // lint takes an optional positional root dir, not the shared options.
    if cmd == "lint" {
        return run_lint(rest);
    }
    let parsed = match parse_args(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("thinaird: {e}\n\n{USAGE}");
            // Usage errors exit 2 (the conventional "bad invocation"
            // code); runtime failures below keep exiting 1 so scripts
            // can tell a typo'd flag from a failed round.
            return ExitCode::from(2);
        }
    };
    let result = match cmd.as_str() {
        "coordinator" | "terminal" => run_role(cmd, parsed),
        "serve" => run_serve(parsed),
        "demo" => run_demo(parsed),
        "bench-scenario" => run_bench_scenario(parsed),
        "bench-soak" => run_bench_soak(parsed),
        "bench-serve" => run_bench_serve(parsed),
        "explore" => run_explore(parsed),
        other => Err(format!("unknown subcommand {other}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("thinaird: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    /// Every numeric flag of `serve`, `bench-serve` and `explore` (the
    /// integer ones, the float ones, and `--seed-range`'s pair), so a
    /// new flag wired through [`num`]/[`fnum`] inherits the contract:
    /// malformed values produce a parse `Err` (exit 2 in `main`), never
    /// a panic and never a silently defaulted value.
    const INT_FLAGS: &[&str] = &[
        // serve (and the shared role/demo options it accepts)
        "--node",
        "--nodes",
        "--sessions",
        "--session-id",
        "--n-packets",
        "--payload-len",
        "--drop-seed",
        "--seed",
        "--coordinator-id",
        "--deadline-ms",
        "--max-sessions",
        "--workers",
        "--idle-ms",
        "--stats-every-ms",
        "--run-for-ms",
        // explore
        "--terminals",
        "--depth",
        "--drop-budget",
    ];
    const FLOAT_FLAGS: &[&str] = &["--drop", "--max-p99-ms"];

    #[test]
    fn every_numeric_flag_rejects_malformed_values() {
        for flag in INT_FLAGS {
            for bad in ["abc", "12abc", "-1", ""] {
                let err = parse_args(&args(&[flag, bad]))
                    .expect_err(&format!("{flag} {bad:?} must not parse"));
                assert!(err.contains("bad number"), "{flag} {bad:?}: {err}");
            }
        }
        for flag in FLOAT_FLAGS {
            let err = parse_args(&args(&[flag, "abc"])).expect_err("float flag must not parse");
            assert!(err.contains("bad float"), "{flag}: {err}");
        }
    }

    #[test]
    fn every_numeric_flag_rejects_a_missing_value() {
        for flag in INT_FLAGS.iter().chain(FLOAT_FLAGS).chain(&["--seed-range"]) {
            let err = parse_args(&args(&[flag])).expect_err("dangling flag must not parse");
            assert!(err.contains("missing value"), "{flag}: {err}");
        }
    }

    #[test]
    fn seed_range_rejects_malformed_and_empty_ranges() {
        for bad in ["5", "5..x", "x..5", "7..7", "9..3"] {
            assert!(
                parse_args(&args(&["--seed-range", bad])).is_err(),
                "--seed-range {bad:?} must not parse"
            );
        }
        let o = parse_args(&args(&["--seed-range", "3..9"])).expect("valid range parses");
        assert_eq!(o.seed_range, Some((3, 9)));
    }

    #[test]
    fn workers_must_be_positive() {
        let err = parse_args(&args(&["--workers", "0"])).expect_err("0 workers rejected");
        assert!(err.contains("at least 1"), "{err}");
        let o = parse_args(&args(&["--workers", "4"])).expect("valid workers parse");
        assert_eq!(o.workers, 4);
        assert!(o.workers_given);
        assert!(!parse_args(&args(&[])).expect("empty ok").workers_given);
    }

    #[test]
    fn well_formed_serve_invocation_parses() {
        let o = parse_args(&args(&[
            "--node",
            "1",
            "--peers",
            "127.0.0.1:7400,127.0.0.1:7401",
            "--max-sessions",
            "128",
            "--workers",
            "4",
            "--idle-ms",
            "5000",
            "--run-for-ms",
            "1000",
        ]))
        .expect("well-formed serve args parse");
        assert_eq!(o.node, Some(1));
        assert_eq!(o.peers.len(), 2);
        assert_eq!((o.max_sessions, o.workers, o.idle_ms), (128, 4, 5000));
        assert_eq!(o.run_for_ms, Some(1000));
    }
}
