//! The serve-mode load generator: ramp thousands of concurrent
//! sessions against auto-admitting [`thinair_net::Server`] daemons and
//! measure throughput, latency and scheduler efficiency.
//!
//! A *wave* spins up one coordinator node plus `terminals − 1` serve
//! daemons — over real loopback UDP sockets or a (optionally chaotic)
//! simulated medium — then launches `concurrency` coordinator sessions
//! at once. The daemons know nothing in advance: every session is
//! admitted by its `Start` frame, multiplexed with all the others over
//! the daemon's single socket, and GC'd on termination. Every session
//! is audited with the soak harness's safety invariant
//! ([`crate::soak::audit_session`]): completers must agree
//! byte-for-byte, non-completers must abort with structured reasons —
//! `violations` must be 0 in every wave.
//!
//! The artifact (`BENCH_serve.json`) records, per wave: sessions/sec,
//! p50/p90/p99/p999 session latency (from the shared
//! [`thinair_net::telemetry`] histogram — bucket precision, not sorted
//! vecs), an abort-reason breakdown, admission/eviction counters,
//! socket send-error counts, the executor's *per-wave* work-counter
//! deltas ([`thinair_net::rt::Metrics::delta`]), and a full telemetry
//! snapshot whose `phase.*` histograms decompose each wave's latency
//! per protocol phase — `dominant_phase` names the biggest
//! contributor. `naive_polls` is what the pre-waker polling executor
//! would have spent (every live task re-polled every pass);
//! `polls_saved` is the measured savings of waker-based readiness —
//! the "idle sessions cost zero CPU" claim, quantified.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use thinair_core::round::XSchedule;
use thinair_net::driver::task_seed;
use thinair_net::rt;
use thinair_net::shard::ShardTransport;
use thinair_net::telemetry;
use thinair_net::transport::{SimNet, UdpTransport};
use thinair_net::udp::AsyncUdpSocket;
use thinair_net::{
    bind_shard_sockets, run_sharded_serve, shard_group, shard_of, Histogram, NetError, Node,
    ServeLimits, ServeStats, Server, SessionConfig, SessionOutcome, ShardedServeOptions,
    SharedTransport, Snapshot, Transport,
};
use thinair_netsim::{DelaySpec, FaultPlan, IidMedium};

use crate::report::{f6, json_escape};
use crate::run::ScenarioError;
use crate::soak::{audit_session, SessionVerdict};

/// Serve artifact schema tag.
pub const SERVE_SCHEMA: &str = "thinair-serve/1";

/// Which transport a wave runs over.
#[derive(Clone, Debug, PartialEq)]
pub enum ServeBackend {
    /// Real loopback UDP sockets, one per node.
    UdpLoopback,
    /// Simulated lossless medium, optionally with a chaos-layer fault
    /// schedule (the soak axis of serve mode).
    Sim {
        /// Adversarial fault plan applied to every frame.
        faults: FaultPlan,
    },
}

impl ServeBackend {
    /// Short tag for wave names and the artifact.
    pub fn tag(&self) -> String {
        match self {
            ServeBackend::UdpLoopback => "udp".into(),
            ServeBackend::Sim { faults } if faults.is_none() => "sim".into(),
            ServeBackend::Sim { faults } => format!("sim+{}", faults.tag()),
        }
    }
}

/// One load wave against a set of serve daemons.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeWaveSpec {
    /// Wave name (unique within a ramp).
    pub name: String,
    /// Transport backend.
    pub backend: ServeBackend,
    /// Protocol nodes, coordinator included (`>= 2`).
    pub terminals: u8,
    /// Concurrent sessions launched in the wave.
    pub concurrency: u32,
    /// x-packets the coordinator broadcasts per session.
    pub x_packets: usize,
    /// Payload bytes per packet.
    pub payload_len: usize,
    /// Receiver-side iid data-plane erasure probability.
    pub drop_prob: f64,
    /// Per-session deadline in milliseconds.
    pub deadline_ms: u64,
    /// Daemon-side admission cap ([`ServeLimits::max_sessions`]).
    /// `None` sizes it to the wave with headroom above the registry's
    /// 7/8 high-water shed (`⌈concurrency·8/7⌉`, min 64), so a
    /// sized-to-fit wave measures protocol throughput, not admission
    /// pacing; `Some(cap)` below `concurrency` makes this an
    /// *overload* wave, where the surplus is paced through explicit
    /// `Busy { retry_after_ms }` replies instead of being dropped.
    pub max_sessions: Option<u32>,
    /// Worker runtimes per node. `1` runs the classic single-runtime
    /// wave (coordinator and daemons co-scheduled on one executor);
    /// `> 1` shards **every** node across that many worker threads —
    /// each with its own executor, epoll reactor and `SO_REUSEPORT`
    /// socket — with session-id-hash dispatch and cross-shard frame
    /// forwarding ([`thinair_net::shard`]). UDP-loopback only: the
    /// simulator has no kernel to steer packets.
    pub workers: usize,
    /// Root seed (payloads, plans, erasures, faults).
    pub seed: u64,
}

impl ServeWaveSpec {
    /// The session configuration every node of the wave runs.
    pub fn session_config(&self) -> SessionConfig {
        SessionConfig {
            n_nodes: self.terminals,
            coordinator: 0,
            schedule: XSchedule::CoordinatorOnly(self.x_packets),
            payload_len: self.payload_len,
            drop_prob: self.drop_prob,
            drop_seed: self.seed,
            x_settle: Duration::from_millis(120),
            retransmit: Duration::from_millis(40),
            deadline: Duration::from_millis(self.deadline_ms),
            ..SessionConfig::default()
        }
    }

    /// Sanity limits (the session config re-validates the rest).
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.terminals < 2 {
            return Err("need a coordinator and at least one daemon");
        }
        if self.concurrency == 0 {
            return Err("need at least one session");
        }
        if self.max_sessions == Some(0) {
            return Err("admission cap must admit at least one session");
        }
        if self.workers == 0 {
            return Err("need at least one worker runtime");
        }
        if self.workers > 1 && self.backend != ServeBackend::UdpLoopback {
            return Err("multi-worker sharding requires the UDP-loopback backend");
        }
        self.session_config().validate().map_err(|_| "session config rejected")
    }
}

/// Measured outcome of one wave.
#[derive(Clone, Debug)]
pub struct ServeWaveResult {
    /// The wave that produced it.
    pub spec: ServeWaveSpec,
    /// Sessions where every collected outcome completed and agreed.
    pub agreed: u32,
    /// Sessions with at least one clean structured abort.
    pub aborted: u32,
    /// Safety-invariant violations (divergent completers); must be 0.
    pub violations: u32,
    /// `Start`s the daemons rejected at capacity (re-admissions make
    /// this larger than the final deficit).
    pub rejected: u64,
    /// `Busy { retry_after_ms }` replies sent for those rejections.
    /// Must equal `rejected` on a healthy wave: the daemons never shed
    /// a `Start` silently.
    pub busy: u64,
    /// Sessions the daemons evicted for idleness.
    pub evicted: u64,
    /// Peak concurrently open sessions across all daemons.
    pub peak_open: u64,
    /// Socket sends that failed or were dropped, all nodes (0 on sim).
    pub send_errors: u64,
    /// Wall-clock duration of the wave in ms (timing).
    pub wall_ms: f64,
    /// Completed-session throughput (timing).
    pub sessions_per_sec: f64,
    /// Median session latency, launch → coordinator outcome, ms.
    /// Estimated from the shared telemetry histogram: relative error is
    /// bounded by 1/16 (6.25 %) of the true value (exact below 16 µs).
    pub latency_ms_p50: f64,
    /// 90th-percentile session latency, ms (same 6.25 % bucket bound).
    pub latency_ms_p90: f64,
    /// 99th-percentile session latency, ms (same 6.25 % bucket bound).
    pub latency_ms_p99: f64,
    /// 99.9th-percentile session latency, ms (same 6.25 % bucket
    /// bound).
    pub latency_ms_p999: f64,
    /// Abort-reason kind → sessions affected (a session counts once
    /// per distinct kind among its aborting nodes, so the sum can
    /// exceed `aborted` when a session aborts for mixed reasons).
    pub abort_reasons: BTreeMap<String, u32>,
    /// The driving thread's telemetry for this wave interval (registry
    /// reset at wave start): `net.*` / `rt.*` / `serve.*` counters and
    /// the `phase.*` per-phase latency histograms (µs samples, 6.25 %
    /// bucket bound on percentiles).
    pub telemetry: Snapshot,
    /// Executor task polls spent on the wave — a per-wave delta
    /// ([`thinair_net::rt::Metrics::delta`]), not the thread's
    /// cumulative count (timing).
    pub task_polls: u64,
    /// Executor scheduler passes, per-wave delta (timing).
    pub executor_passes: u64,
    /// Peak live tasks on the runtime.
    pub peak_tasks: u64,
    /// What the pre-waker polling executor would have spent:
    /// `executor_passes × peak_tasks` (every pass re-polled every task;
    /// on a sharded wave, summed per runtime before the multiply).
    pub naive_polls: u64,
    /// `naive_polls − task_polls`: the measured win of waker-based
    /// readiness.
    pub polls_saved: u64,
    /// Frames that arrived on a shard socket but belonged to a sibling
    /// (kernel 4-tuple steering vs session-hash dispatch); 0 on
    /// single-worker waves.
    pub forwarded: u64,
    /// Frames surfaced from the cross-shard injection queues; equals
    /// `forwarded` when no frame was lost in flight between shards.
    pub injected: u64,
    /// Fd-readability wakeups delivered by the epoll reactors, all
    /// runtimes (timing). Zero on the sim backend / non-Linux hosts.
    pub epoll_wakeups: u64,
    /// Times a UDP transport fell back to arming the adaptive re-poll
    /// timer. 0 on every epoll-path wave: the reactor makes the
    /// busy-poll bridge unnecessary.
    pub repoll_arms: u64,
}

impl ServeWaveResult {
    /// The `phase.*` histogram with the largest total recorded time —
    /// the wave's dominant per-phase latency contributor.
    pub fn dominant_phase(&self) -> Option<(&str, &Histogram)> {
        self.telemetry
            .hists
            .iter()
            .filter(|(name, _)| name.starts_with("phase."))
            .max_by_key(|(_, h)| h.sum())
            .map(|(name, h)| (name.as_str(), h))
    }
}

/// Runs one wave: builds the nodes, launches the load, audits every
/// session, measures the runtime. Waves with `workers > 1` run the
/// sharded path ([`run_sharded_wave`] internally): every node split
/// across worker threads with per-shard runtimes and `SO_REUSEPORT`
/// sockets.
pub fn run_serve_wave(spec: &ServeWaveSpec) -> Result<ServeWaveResult, ScenarioError> {
    spec.validate().map_err(ScenarioError::Invalid)?;
    if spec.workers > 1 {
        return run_sharded_wave(spec);
    }
    // The wave owns the driving thread's telemetry: reset at the start
    // so the snapshot taken after the wave is a pure per-wave interval
    // (waves on other threads are independent — the registry is
    // thread-local).
    telemetry::reset();
    telemetry::set_timing(true);
    let cfg = spec.session_config();
    let n = spec.terminals as usize;

    // Build per-node transports for the chosen backend.
    let transports: Vec<DynTransport> = match &spec.backend {
        ServeBackend::UdpLoopback => {
            let socks: Vec<AsyncUdpSocket> = (0..n)
                .map(|_| AsyncUdpSocket::bind("127.0.0.1:0"))
                .collect::<io::Result<_>>()
                .map_err(|e| ScenarioError::Net(NetError::Io(e)))?;
            let addrs: Vec<std::net::SocketAddr> = socks
                .iter()
                .map(|s| s.local_addr())
                .collect::<io::Result<_>>()
                .map_err(|e| ScenarioError::Net(NetError::Io(e)))?;
            socks
                .into_iter()
                .enumerate()
                .map(|(i, s)| DynTransport::Udp(UdpTransport::new(s, addrs.clone(), i as u8)))
                .collect()
        }
        ServeBackend::Sim { faults } => {
            let net = SimNet::with_faults(
                IidMedium::symmetric(n, 0.0, spec.seed),
                n,
                *faults,
                thinair_netsim::splitmix64(spec.seed ^ 0xFA),
                0,
            );
            // The transports hold the hub alive; the `SimNet` handle
            // itself can drop.
            (0..n).map(|i| DynTransport::Sim(net.transport(i as u8))).collect()
        }
    };
    let (coordinator, daemons, taps) = build_nodes(transports, &cfg, spec);

    let handles: Vec<_> = daemons.iter().map(|d| d.handle()).collect();
    let post_handles = handles.clone();
    let mut outcome_rxs = Vec::new();
    let mut daemons = daemons;
    for d in daemons.iter_mut() {
        outcome_rxs.push(d.outcomes());
    }

    let concurrency = spec.concurrency;
    let seed = spec.seed;
    let started = Instant::now();

    let (coord_outs, served, lat_us, metrics, send_errors) = rt::block_on(async move {
        // Baseline for the per-wave executor delta (satellite fix:
        // `rt::metrics()` alone is cumulative over the executor's
        // lifetime, which conflates waves sharing a thread).
        let rt_base = rt::metrics();
        coordinator.start_pump();
        for d in daemons {
            rt::spawn(d.run());
        }
        // Launch the wave, paced in small chunks so the start barrier
        // does not slam every socket buffer in one burst.
        let mut tasks = Vec::with_capacity(concurrency as usize);
        for s in 1..=concurrency as u64 {
            let node = coordinator.clone();
            let cfg = cfg.clone();
            tasks.push(rt::spawn(async move {
                let t0 = Instant::now();
                let out = node.coordinate(s, cfg, task_seed(seed, s, 0)).await;
                (out, t0.elapsed())
            }));
            if s % 64 == 0 {
                rt::sleep(Duration::from_millis(1)).await;
            }
        }
        let mut coord_outs = Vec::with_capacity(tasks.len());
        let mut lat_us = Histogram::new();
        for t in tasks {
            let (out, dt) = t.await;
            let out = out.map_err(ScenarioError::Net)?;
            lat_us.record(dt.as_micros() as u64);
            coord_outs.push(out);
        }
        // The coordinators are done; give every daemon a short grace
        // window to flush its remaining outcomes (a daemon whose link
        // was chaos-partitioned may have none for some sessions).
        let mut served: Vec<SessionOutcome> = Vec::new();
        for rx in outcome_rxs.iter_mut() {
            while let Ok(Some(out)) = rt::timeout(Duration::from_millis(400), rx.recv()).await {
                served.push(out);
            }
        }
        for h in &handles {
            h.stop();
        }
        let send_errors: u64 = taps.iter().map(|t| t.send_errors()).sum();
        let metrics = rt::metrics().delta(&rt_base);
        Ok::<_, ScenarioError>((coord_outs, served, lat_us, metrics, send_errors))
    })?;
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    telemetry::set_timing(false);
    let wave_telemetry = telemetry::snapshot();

    let (agreed, aborted, violations, abort_reasons) = audit_wave(&coord_outs, &served);

    let (mut rejected, mut busy, mut evicted, mut peak_open) = (0u64, 0u64, 0u64, 0u64);
    for h in &post_handles {
        let s = h.stats();
        rejected += s.rejected;
        busy += s.busy;
        evicted += s.evicted;
        peak_open = peak_open.max(s.peak_open);
    }
    let naive_polls = metrics.passes.saturating_mul(metrics.max_tasks);
    Ok(ServeWaveResult {
        spec: spec.clone(),
        agreed,
        aborted,
        violations,
        rejected,
        busy,
        evicted,
        peak_open,
        send_errors,
        wall_ms,
        sessions_per_sec: if wall_ms > 0.0 { agreed as f64 / (wall_ms / 1e3) } else { 0.0 },
        latency_ms_p50: lat_us.percentile(0.50) as f64 / 1e3,
        latency_ms_p90: lat_us.percentile(0.90) as f64 / 1e3,
        latency_ms_p99: lat_us.percentile(0.99) as f64 / 1e3,
        latency_ms_p999: lat_us.percentile(0.999) as f64 / 1e3,
        abort_reasons,
        repoll_arms: wave_telemetry.counters.get("net.udp.repoll_arms").copied().unwrap_or(0),
        telemetry: wave_telemetry,
        task_polls: metrics.task_polls,
        executor_passes: metrics.passes,
        peak_tasks: metrics.max_tasks,
        naive_polls,
        polls_saved: naive_polls.saturating_sub(metrics.task_polls),
        forwarded: 0,
        injected: 0,
        epoll_wakeups: metrics.epoll_wakeups,
    })
}

/// Audits each session over every outcome collected for it (the
/// coordinator's plus any daemon-side ones), returning
/// `(agreed, aborted, violations, abort-reason breakdown)`.
fn audit_wave(
    coord_outs: &[SessionOutcome],
    served: &[SessionOutcome],
) -> (u32, u32, u32, BTreeMap<String, u32>) {
    let (mut agreed, mut aborted, mut violations) = (0u32, 0u32, 0u32);
    let mut abort_reasons: BTreeMap<String, u32> = BTreeMap::new();
    for co in coord_outs {
        let mut outs: Vec<SessionOutcome> =
            served.iter().filter(|o| o.session == co.session).cloned().collect();
        outs.push(co.clone());
        match audit_session(&outs) {
            SessionVerdict::Agreed { .. } => agreed += 1,
            SessionVerdict::AbortedClean { reasons } => {
                aborted += 1;
                for kind in reasons.keys() {
                    *abort_reasons.entry(kind.clone()).or_insert(0) += 1;
                }
            }
            SessionVerdict::Violation { .. } => violations += 1,
        }
    }
    (agreed, aborted, violations, abort_reasons)
}

/// Splits per-node transports into the coordinator node, one server per
/// remaining roster slot, and shared "taps" for reading every node's
/// send-error counters after the wave.
#[allow(clippy::type_complexity)]
fn build_nodes(
    transports: Vec<DynTransport>,
    cfg: &SessionConfig,
    spec: &ServeWaveSpec,
) -> (Node<DynTransport>, Vec<Server<DynTransport>>, Vec<SharedTransport<DynTransport>>) {
    let limits = wave_limits(spec);
    let shared: Vec<SharedTransport<DynTransport>> =
        transports.into_iter().map(SharedTransport::new).collect();
    let mut nodes = shared.iter().cloned();
    let coordinator = Node::new_shared(nodes.next().expect("nonempty roster"));
    let daemons = nodes.map(|t| Server::new(t, cfg.clone(), spec.seed, limits)).collect();
    (coordinator, daemons, shared)
}

/// Daemon-total admission limits for a wave (the sharded path splits
/// `max_sessions` across shards, rounded up).
fn wave_limits(spec: &ServeWaveSpec) -> ServeLimits {
    ServeLimits {
        max_sessions: spec
            .max_sessions
            .map(|m| m as usize)
            .unwrap_or_else(|| (spec.concurrency as usize * 8).div_ceil(7).max(64)),
        idle_timeout: Duration::from_millis(spec.deadline_ms).max(Duration::from_secs(2)),
        ..ServeLimits::default()
    }
}

/// What one coordinator shard measured: its sessions' outcomes and
/// latencies, plus the worker thread's runtime / telemetry counters.
struct CoordShard {
    outs: Vec<SessionOutcome>,
    lat_us: Histogram,
    metrics: rt::Metrics,
    snapshot: Snapshot,
    send_errors: u64,
}

/// One coordinator worker: drives the wave's sessions whose ids hash
/// to its shard, on its own runtime over its own `SO_REUSEPORT`
/// socket. Sessions *must* be partitioned by [`shard_of`] — replies
/// the kernel steers to a sibling socket are forwarded to the shard
/// the hash names, which has to be the one running the session.
fn coordinator_shard(
    t: ShardTransport,
    cfg: SessionConfig,
    concurrency: u32,
    seed: u64,
) -> Result<CoordShard, ScenarioError> {
    telemetry::set_timing(true);
    let (shard, workers) = (t.shard(), t.workers());
    rt::block_on(async move {
        let shared = SharedTransport::new(t);
        let tap = shared.clone();
        let node = Node::new_shared(shared);
        node.start_pump();
        let mut tasks = Vec::new();
        let mut launched = 0u64;
        for s in 1..=concurrency as u64 {
            if shard_of(s, workers) != shard {
                continue;
            }
            let node = node.clone();
            let cfg = cfg.clone();
            tasks.push(rt::spawn(async move {
                let t0 = Instant::now();
                let out = node.coordinate(s, cfg, task_seed(seed, s, 0)).await;
                (out, t0.elapsed())
            }));
            launched += 1;
            if launched.is_multiple_of(64) {
                rt::sleep(Duration::from_millis(1)).await;
            }
        }
        let mut outs = Vec::with_capacity(tasks.len());
        let mut lat_us = Histogram::new();
        for t in tasks {
            let (out, dt) = t.await;
            let out = out.map_err(ScenarioError::Net)?;
            lat_us.record(dt.as_micros() as u64);
            outs.push(out);
        }
        Ok(CoordShard {
            outs,
            lat_us,
            metrics: rt::metrics(),
            snapshot: telemetry::snapshot(),
            send_errors: tap.send_errors(),
        })
    })
}

/// The multi-worker wave: every node — coordinator included — sharded
/// across `spec.workers` threads, each with its own executor + epoll
/// reactor + `SO_REUSEPORT` socket, cross-shard traffic re-dispatched
/// in userspace by session-id hash. Daemon nodes run
/// [`run_sharded_serve`]; the coordinator's sessions are partitioned
/// over its shards by the same hash. Per-runtime counters (latency
/// histograms, telemetry snapshots, executor metrics, serve stats) are
/// merged after every thread joins.
fn run_sharded_wave(spec: &ServeWaveSpec) -> Result<ServeWaveResult, ScenarioError> {
    let io_err = |e: io::Error| ScenarioError::Net(NetError::Io(e));
    telemetry::reset();
    let cfg = spec.session_config();
    let n = spec.terminals as usize;
    let w = spec.workers;

    // One SO_REUSEPORT socket group per node, all on OS-picked ports.
    let mut groups: Vec<Vec<AsyncUdpSocket>> = Vec::with_capacity(n);
    for _ in 0..n {
        groups.push(bind_shard_sockets("127.0.0.1:0".parse().expect("addr"), w).map_err(io_err)?);
    }
    let addrs: Vec<std::net::SocketAddr> =
        groups.iter().map(|g| g[0].local_addr()).collect::<io::Result<_>>().map_err(io_err)?;

    let opts = ShardedServeOptions {
        cfg: cfg.clone(),
        seed: spec.seed,
        limits: wave_limits(spec),
        collect_outcomes: true,
        on_outcome: None,
        timing: true,
    };
    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();

    let (daemon_reports, coord_shards) = std::thread::scope(|s| {
        let mut groups = groups.into_iter();
        let coord_socks = groups.next().expect("coordinator group");
        let daemon_handles: Vec<_> = groups
            .enumerate()
            .map(|(d, socks)| {
                let (addrs, opts, stop) = (addrs.clone(), opts.clone(), stop.clone());
                s.spawn(move || run_sharded_serve(socks, addrs, (d + 1) as u8, opts, stop))
            })
            .collect();
        let coord_handles: Vec<_> = shard_group(coord_socks, addrs.clone(), 0)
            .into_iter()
            .map(|t| {
                let cfg = cfg.clone();
                s.spawn(move || coordinator_shard(t, cfg, spec.concurrency, spec.seed))
            })
            .collect();
        let coord_shards: Vec<_> = coord_handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
            .collect();
        // Every coordinator session has resolved; give the daemons a
        // short grace window to finish their fin barriers and queue the
        // last outcomes, then stop them.
        std::thread::sleep(Duration::from_millis(400));
        stop.store(true, Ordering::Relaxed);
        let daemon_reports: Vec<_> = daemon_handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
            .collect();
        (daemon_reports, coord_shards)
    });
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;

    // Merge the per-runtime measurements.
    let mut wave_telemetry = telemetry::snapshot();
    let mut lat_us = Histogram::new();
    let mut coord_outs: Vec<SessionOutcome> = Vec::new();
    let mut metrics = rt::Metrics::default();
    let mut naive_polls = 0u64;
    let mut send_errors = 0u64;
    for cs in coord_shards {
        let cs = cs?;
        wave_telemetry.merge(&cs.snapshot);
        lat_us.merge(&cs.lat_us);
        coord_outs.extend(cs.outs);
        naive_polls += cs.metrics.passes.saturating_mul(cs.metrics.max_tasks);
        metrics.absorb(&cs.metrics);
        send_errors += cs.send_errors;
    }
    let mut served: Vec<SessionOutcome> = Vec::new();
    let (mut rejected, mut busy, mut evicted, mut peak_open) = (0u64, 0u64, 0u64, 0u64);
    for reports in daemon_reports {
        // Within one daemon the shards hold their sessions
        // concurrently (stats absorb, peaks add); across daemon nodes
        // the wave keeps the max, like the single-runtime path.
        let mut node_stats = ServeStats::default();
        for r in reports.map_err(io_err)? {
            served.extend(r.outcomes);
            wave_telemetry.merge(&r.snapshot);
            naive_polls += r.rt_metrics.passes.saturating_mul(r.rt_metrics.max_tasks);
            metrics.absorb(&r.rt_metrics);
            node_stats.absorb(&r.stats);
            send_errors += r.send_errors;
        }
        rejected += node_stats.rejected;
        busy += node_stats.busy;
        evicted += node_stats.evicted;
        peak_open = peak_open.max(node_stats.peak_open);
    }

    let (agreed, aborted, violations, abort_reasons) = audit_wave(&coord_outs, &served);
    Ok(ServeWaveResult {
        spec: spec.clone(),
        agreed,
        aborted,
        violations,
        rejected,
        busy,
        evicted,
        peak_open,
        send_errors,
        wall_ms,
        sessions_per_sec: if wall_ms > 0.0 { agreed as f64 / (wall_ms / 1e3) } else { 0.0 },
        latency_ms_p50: lat_us.percentile(0.50) as f64 / 1e3,
        latency_ms_p90: lat_us.percentile(0.90) as f64 / 1e3,
        latency_ms_p99: lat_us.percentile(0.99) as f64 / 1e3,
        latency_ms_p999: lat_us.percentile(0.999) as f64 / 1e3,
        abort_reasons,
        forwarded: wave_telemetry.counters.get("net.shard.forwarded").copied().unwrap_or(0),
        injected: wave_telemetry.counters.get("net.shard.injected").copied().unwrap_or(0),
        epoll_wakeups: metrics.epoll_wakeups,
        repoll_arms: wave_telemetry.counters.get("net.udp.repoll_arms").copied().unwrap_or(0),
        telemetry: wave_telemetry,
        task_polls: metrics.task_polls,
        executor_passes: metrics.passes,
        peak_tasks: metrics.max_tasks,
        naive_polls,
        polls_saved: naive_polls.saturating_sub(metrics.task_polls),
    })
}

/// A tiny enum-dispatch transport so one wave driver covers both
/// backends (the offline build has no `Box<dyn Transport>` need beyond
/// this file). Holds the transports *bare*: the single
/// `SharedTransport<DynTransport>` wrapper `build_nodes` adds is the
/// only shared/borrow layer on the frame path.
pub enum DynTransport {
    /// Real-socket endpoint.
    Udp(UdpTransport),
    /// Simulated endpoint.
    Sim(thinair_net::SimTransport<IidMedium>),
}

impl Transport for DynTransport {
    fn local_node(&self) -> u8 {
        match self {
            DynTransport::Udp(t) => t.local_node(),
            DynTransport::Sim(t) => t.local_node(),
        }
    }

    fn node_count(&self) -> usize {
        match self {
            DynTransport::Udp(t) => t.node_count(),
            DynTransport::Sim(t) => t.node_count(),
        }
    }

    fn send_to(&mut self, to: u8, frame: &thinair_net::Frame) -> io::Result<()> {
        match self {
            DynTransport::Udp(t) => t.send_to(to, frame),
            DynTransport::Sim(t) => t.send_to(to, frame),
        }
    }

    fn broadcast(&mut self, frame: &thinair_net::Frame) -> io::Result<()> {
        match self {
            DynTransport::Udp(t) => t.broadcast(frame),
            DynTransport::Sim(t) => t.broadcast(frame),
        }
    }

    fn poll_recv(
        &mut self,
        cx: &mut std::task::Context<'_>,
    ) -> std::task::Poll<io::Result<thinair_net::Frame>> {
        match self {
            DynTransport::Udp(t) => t.poll_recv(cx),
            DynTransport::Sim(t) => t.poll_recv(cx),
        }
    }

    fn invalid_frames(&self) -> u64 {
        match self {
            DynTransport::Udp(t) => t.invalid_frames(),
            DynTransport::Sim(t) => t.invalid_frames(),
        }
    }

    fn send_errors(&self) -> u64 {
        match self {
            DynTransport::Udp(t) => t.send_errors(),
            DynTransport::Sim(t) => t.send_errors(),
        }
    }
}

// ---------------------------------------------------------------------------
// The ramp
// ---------------------------------------------------------------------------

fn wave_base(seed: u64) -> ServeWaveSpec {
    ServeWaveSpec {
        name: String::new(),
        backend: ServeBackend::UdpLoopback,
        terminals: 3,
        concurrency: 0,
        x_packets: 12,
        payload_len: 8,
        drop_prob: 0.25,
        deadline_ms: 60_000,
        max_sessions: None,
        workers: 1,
        seed,
    }
}

/// The chaos plan of the serve soak axis: survivable faults (reorder,
/// duplication, corruption, delay jitter) — sessions must still agree
/// or abort cleanly while multiplexed through the daemons.
pub fn serve_chaos_plan() -> FaultPlan {
    FaultPlan {
        reorder: 0.15,
        duplicate: 0.15,
        corrupt: 0.01,
        delay: Some(DelaySpec { prob: 0.2, max_frames: 4 }),
        ..FaultPlan::none()
    }
}

/// The full serve ramp: loopback-UDP waves of 100 → 1 000 → 5 000
/// concurrent sessions, a 200-session chaos wave over the simulator
/// (the serve soak axis), and an *overload* wave — 7 500 sessions
/// against daemons capped at 2 048, so ~3× the capacity must be paced
/// through `Busy` retries rather than dropped (the graceful-degradation
/// axis: throughput should slope, not cliff).
pub fn serve_ramp_specs(seed: u64) -> Vec<ServeWaveSpec> {
    let base = wave_base(seed);
    let mut specs: Vec<ServeWaveSpec> = [100u32, 1_000, 5_000]
        .iter()
        .map(|&c| ServeWaveSpec {
            name: format!("serve_udp_{c}"),
            concurrency: c,
            deadline_ms: 120_000,
            ..base.clone()
        })
        .collect();
    specs.push(ServeWaveSpec {
        name: "serve_sim_chaos_200".into(),
        backend: ServeBackend::Sim { faults: serve_chaos_plan() },
        concurrency: 200,
        deadline_ms: 20_000,
        ..base.clone()
    });
    specs.push(ServeWaveSpec {
        name: "serve_udp_overload_7500".into(),
        concurrency: 7_500,
        // Well below the wave's natural launch-gated equilibrium
        // (~450 open), so the registry's Busy/park/re-admit path is
        // genuinely exercised — a 15× oversubscription.
        max_sessions: Some(512),
        deadline_ms: 120_000,
        ..base.clone()
    });
    // The sharded axis: the 5k wave again at 4 workers per node (the
    // direct w1-vs-w4 comparison), then the 10k+ wave only the sharded
    // daemons attempt. Every runtime must ride the epoll reactor —
    // `repoll_arms` is asserted 0 downstream.
    specs.push(ServeWaveSpec {
        name: "serve_udp_5000_w4".into(),
        concurrency: 5_000,
        workers: 4,
        deadline_ms: 120_000,
        ..base.clone()
    });
    specs.push(ServeWaveSpec {
        name: "serve_udp_10000_w4".into(),
        concurrency: 10_000,
        workers: 4,
        deadline_ms: 180_000,
        ..base.clone()
    });
    specs
}

/// The CI smoke ramp: small waves of every backend (≈ a minute on a
/// shared runner), same shapes as the full ramp.
pub fn serve_smoke_specs(seed: u64) -> Vec<ServeWaveSpec> {
    let base = wave_base(seed);
    vec![
        ServeWaveSpec {
            name: "serve_udp_50".into(),
            concurrency: 50,
            deadline_ms: 30_000,
            ..base.clone()
        },
        ServeWaveSpec {
            name: "serve_sim_chaos_50".into(),
            backend: ServeBackend::Sim { faults: serve_chaos_plan() },
            concurrency: 50,
            deadline_ms: 15_000,
            ..base.clone()
        },
        // Miniature overload wave: 3× the admission cap, so the CI
        // smoke run exercises the Busy/retry path end-to-end.
        ServeWaveSpec {
            name: "serve_udp_overload_150".into(),
            concurrency: 150,
            max_sessions: Some(48),
            deadline_ms: 60_000,
            ..base.clone()
        },
        // The sharded smoke: 4 worker runtimes per node over
        // SO_REUSEPORT + the epoll reactor, cross-shard forwarding and
        // all — the CI shard-smoke job's gate.
        ServeWaveSpec {
            name: "serve_udp_50_w4".into(),
            concurrency: 50,
            workers: 4,
            deadline_ms: 30_000,
            ..base.clone()
        },
    ]
}

// ---------------------------------------------------------------------------
// The artifact
// ---------------------------------------------------------------------------

fn wave_json(r: &ServeWaveResult) -> String {
    let spec = &r.spec;
    let reasons = r
        .abort_reasons
        .iter()
        .map(|(k, v)| format!("\"{}\": {v}", json_escape(k)))
        .collect::<Vec<_>>()
        .join(", ");
    let fields = vec![
        format!("\"name\": \"{}\"", json_escape(&spec.name)),
        format!("\"backend\": \"{}\"", json_escape(&spec.backend.tag())),
        format!("\"terminals\": {}", spec.terminals),
        format!("\"concurrency\": {}", spec.concurrency),
        format!("\"x_packets\": {}", spec.x_packets),
        format!("\"payload_len\": {}", spec.payload_len),
        format!("\"drop_prob\": {}", f6(spec.drop_prob)),
        format!(
            "\"max_sessions\": {}",
            spec.max_sessions.map(|m| m.to_string()).unwrap_or_else(|| "null".into())
        ),
        format!("\"workers\": {}", spec.workers),
        format!("\"seed\": {}", spec.seed),
        format!("\"agreed\": {}", r.agreed),
        format!("\"aborted\": {}", r.aborted),
        format!("\"violations\": {}", r.violations),
        format!("\"abort_reasons\": {{{reasons}}}"),
        format!("\"rejected\": {}", r.rejected),
        format!("\"busy\": {}", r.busy),
        format!("\"evicted\": {}", r.evicted),
        format!("\"peak_open\": {}", r.peak_open),
        format!("\"send_errors\": {}", r.send_errors),
        format!("\"wall_ms\": {:.1}", r.wall_ms),
        format!("\"sessions_per_sec\": {:.1}", r.sessions_per_sec),
        format!("\"latency_ms_p50\": {:.1}", r.latency_ms_p50),
        format!("\"latency_ms_p90\": {:.1}", r.latency_ms_p90),
        format!("\"latency_ms_p99\": {:.1}", r.latency_ms_p99),
        format!("\"latency_ms_p999\": {:.1}", r.latency_ms_p999),
        format!("\"task_polls\": {}", r.task_polls),
        format!("\"executor_passes\": {}", r.executor_passes),
        format!("\"peak_tasks\": {}", r.peak_tasks),
        format!("\"naive_polls\": {}", r.naive_polls),
        format!("\"polls_saved\": {}", r.polls_saved),
        format!("\"forwarded\": {}", r.forwarded),
        format!("\"injected\": {}", r.injected),
        format!("\"epoll_wakeups\": {}", r.epoll_wakeups),
        format!("\"repoll_arms\": {}", r.repoll_arms),
        format!(
            "\"dominant_phase\": \"{}\"",
            json_escape(r.dominant_phase().map(|(name, _)| name).unwrap_or(""))
        ),
        format!("\"telemetry\": {}", r.telemetry.to_json()),
    ];
    format!("    {{{}}}", fields.join(", "))
}

/// Renders the serve artifact (every field is timing-class except the
/// audit counters; serve waves race real sockets, so no determinism
/// contract is claimed).
pub fn render_serve_json(results: &[ServeWaveResult]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{SERVE_SCHEMA}\",\n"));
    out.push_str("  \"waves\": [\n");
    let rows: Vec<String> = results.iter().map(wave_json).collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

/// Writes the serve artifact to `path`.
pub fn write_serve_json(path: &Path, results: &[ServeWaveResult]) -> io::Result<()> {
    std::fs::write(path, render_serve_json(results))
}

/// A fixed-width console summary, one line per wave.
pub fn serve_summary_table(results: &[ServeWaveResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<24} {:>6} {:>4} {:>7} {:>8} {:>5} {:>8} {:>9} {:>9} {:>9} {:>12}  {}\n",
        "wave",
        "conc",
        "wrk",
        "agreed",
        "aborted",
        "viol",
        "busy",
        "sess/s",
        "p50 ms",
        "p99 ms",
        "polls saved",
        "dominant phase"
    ));
    for r in results {
        out.push_str(&format!(
            "{:<24} {:>6} {:>4} {:>7} {:>8} {:>5} {:>8} {:>9.1} {:>9.1} {:>9.1} {:>12}  {}\n",
            r.spec.name,
            r.spec.concurrency,
            r.spec.workers,
            r.agreed,
            r.aborted,
            r.violations,
            r.busy,
            r.sessions_per_sec,
            r.latency_ms_p50,
            r.latency_ms_p99,
            r.polls_saved,
            r.dominant_phase().map(|(name, _)| name).unwrap_or("-"),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramp_specs_are_valid_and_cover_both_backends() {
        for specs in [serve_ramp_specs(1), serve_smoke_specs(1)] {
            assert!(specs.iter().any(|s| s.backend == ServeBackend::UdpLoopback));
            assert!(specs.iter().any(|s| matches!(s.backend, ServeBackend::Sim { .. })));
            for s in &specs {
                assert_eq!(s.validate(), Ok(()), "{}", s.name);
            }
            let names: std::collections::BTreeSet<_> = specs.iter().map(|s| &s.name).collect();
            assert_eq!(names.len(), specs.len(), "wave names must be unique");
        }
        // The acceptance ramp reaches 100 → 1k → 5k, the overload wave
        // pushes past 5k against a daemon cap well below it, and the
        // sharded axis re-runs 5k at 4 workers then rides to 10k.
        let full = serve_ramp_specs(1);
        let concs: Vec<u32> = full
            .iter()
            .filter(|s| s.backend == ServeBackend::UdpLoopback)
            .map(|s| s.concurrency)
            .collect();
        assert_eq!(concs, vec![100, 1_000, 5_000, 7_500, 5_000, 10_000]);
        let overload = full.iter().find(|s| s.max_sessions.is_some()).expect("overload wave");
        assert!(overload.concurrency >= 5_000);
        assert!(overload.max_sessions.unwrap() < overload.concurrency);
        // The w1-vs-w4 pair shares its shape, and the 10k wave is
        // sharded.
        let w4_5k = full.iter().find(|s| s.name == "serve_udp_5000_w4").expect("w4 wave");
        let w1_5k = full.iter().find(|s| s.name == "serve_udp_5000").expect("w1 wave");
        assert_eq!(w4_5k.workers, 4);
        assert_eq!((w4_5k.concurrency, w4_5k.terminals), (w1_5k.concurrency, w1_5k.terminals));
        assert!(full.iter().any(|s| s.concurrency >= 10_000 && s.workers > 1));
        // The smoke ramp carries a miniature overload wave and a
        // sharded wave too.
        let smoke = serve_smoke_specs(1);
        assert!(smoke.iter().any(|s| s.max_sessions.is_some_and(|m| m < s.concurrency)));
        assert!(smoke.iter().any(|s| s.workers > 1));
        // Sharding the sim backend is rejected up front.
        let bad = ServeWaveSpec {
            backend: ServeBackend::Sim { faults: FaultPlan::none() },
            workers: 2,
            concurrency: 10,
            ..wave_base(1)
        };
        assert!(bad.validate().is_err());
    }

    /// The sharded path in miniature: 4 worker runtimes per node over
    /// `SO_REUSEPORT`, sessions hash-dispatched, every frame the kernel
    /// missteers re-forwarded in userspace — zero violations, and on
    /// Linux zero re-poll timer arms (the epoll reactor carries every
    /// worker).
    #[test]
    fn sharded_udp_wave_agrees_with_zero_violations() {
        let spec = ServeWaveSpec {
            name: "test_udp_24_w4".into(),
            concurrency: 24,
            workers: 4,
            deadline_ms: 20_000,
            ..wave_base(11)
        };
        let r = run_serve_wave(&spec).expect("wave runs");
        assert_eq!(r.violations, 0, "safety invariant violated: {r:?}");
        assert_eq!(r.agreed + r.aborted, 24);
        assert!(r.agreed >= 20, "loopback sessions should mostly agree: {r:?}");
        // Cross-shard fabric was exercised and lost nothing.
        assert!(r.forwarded > 0, "4-tuple steering must missteer some frames");
        // A frame forwarded into a shard's queue just as that shard
        // observes stop is counted forwarded but never drained, so
        // allow a small shutdown residue — never the reverse.
        assert!(
            r.forwarded >= r.injected && r.forwarded - r.injected < 100,
            "fabric lost frames: {r:?}"
        );
        if cfg!(target_os = "linux") {
            assert!(r.epoll_wakeups > 0, "workers must wake via the epoll reactor");
            assert_eq!(r.repoll_arms, 0, "a worker fell back to the re-poll timer");
        }
    }

    #[test]
    fn small_udp_wave_agrees_with_zero_violations() {
        let spec = ServeWaveSpec {
            name: "test_udp_10".into(),
            concurrency: 10,
            deadline_ms: 20_000,
            ..wave_base(3)
        };
        let r = run_serve_wave(&spec).expect("wave runs");
        assert_eq!(r.violations, 0);
        assert_eq!(r.agreed + r.aborted, 10);
        assert!(r.agreed >= 8, "loopback sessions should mostly agree: {r:?}");
        assert!(r.latency_ms_p90 >= r.latency_ms_p50);
        assert!(r.latency_ms_p99 >= r.latency_ms_p90);
        assert!(r.latency_ms_p999 >= r.latency_ms_p99);
        assert!(r.polls_saved > 0, "waker executor must beat the naive baseline");
        // The wave snapshot carries the per-layer breakdown: frames on
        // the wire, and phase histograms naming a dominant contributor.
        assert!(r.telemetry.counters.get("net.tx.frames").copied().unwrap_or(0) > 0);
        let (phase, hist) = r.dominant_phase().expect("phase histograms recorded");
        assert!(phase.starts_with("phase."));
        assert!(hist.count() > 0);
    }

    /// The serve soak smoke the ISSUE asks for: 200 concurrent sessions
    /// through auto-admitting daemons under a chaos plan — zero
    /// violations.
    #[test]
    fn serve_soak_smoke_200_chaos_sessions_zero_violations() {
        let spec = ServeWaveSpec {
            name: "test_sim_chaos_200".into(),
            backend: ServeBackend::Sim { faults: serve_chaos_plan() },
            concurrency: 200,
            // Aborting sessions burn the whole deadline (concurrently);
            // completers finish in well under a second.
            deadline_ms: 10_000,
            ..wave_base(5)
        };
        let r = run_serve_wave(&spec).expect("wave runs");
        assert_eq!(r.violations, 0, "safety invariant violated: {r:?}");
        assert_eq!(r.agreed + r.aborted, 200);
        // A chaos verdict is a *deterministic partition* (stable across
        // retransmissions), so a fraction of sessions abort by design;
        // the bulk must still agree.
        assert!(r.agreed > 140, "survivable chaos should mostly agree: {r:?}");
        assert!(r.peak_open <= 200);
        // Every aborted session must surface at least one structured
        // reason kind in the per-wave breakdown.
        assert!(
            r.abort_reasons.values().sum::<u32>() >= r.aborted,
            "abort breakdown incomplete: {:?} vs {} aborted",
            r.abort_reasons,
            r.aborted
        );
    }

    /// The graceful-degradation contract in miniature: 3× the admission
    /// cap, every over-capacity `Start` answered with `Busy`, every
    /// session eventually completing through paced retries — no silent
    /// sheds, no violations, no cliff.
    #[test]
    fn overload_wave_paces_surplus_through_busy() {
        let spec = ServeWaveSpec {
            name: "test_udp_overload_60".into(),
            concurrency: 60,
            max_sessions: Some(20),
            deadline_ms: 30_000,
            ..wave_base(7)
        };
        let r = run_serve_wave(&spec).expect("wave runs");
        assert_eq!(r.violations, 0, "safety invariant violated: {r:?}");
        assert_eq!(r.agreed + r.aborted, 60);
        assert!(r.agreed >= 48, "overload should degrade, not collapse: {r:?}");
        // The cap actually bit: sessions beyond the high-water mark were
        // refused — and every refusal was answered, never shed silently.
        assert!(r.rejected > 0, "cap of 20 under 60 sessions must reject: {r:?}");
        assert_eq!(r.busy, r.rejected, "every rejection must send Busy: {r:?}");
        assert!(r.peak_open <= 20);
        // The daemons' Busy counters flow into the wave telemetry.
        assert!(r.telemetry.counters.get("serve.busy.sent").copied().unwrap_or(0) > 0);
    }

    /// Latency percentiles now come from the shared bucketed histogram:
    /// pin the documented 6.25 % relative-error bound on a known
    /// distribution instead of the old exact sorted-vec behavior.
    #[test]
    fn latency_percentiles_respect_the_bucket_bound() {
        let mut h = Histogram::new();
        for v in 1..=1_000u64 {
            h.record(v * 100); // 100 µs .. 100 ms, uniform
        }
        for (p, exact) in [(0.50, 50_000.0), (0.90, 90_000.0), (0.99, 99_000.0)] {
            let est = h.percentile(p) as f64;
            assert!(
                (est - exact).abs() <= exact / 16.0 + 1.0,
                "p{p}: estimate {est} strays beyond the 1/16 bound from {exact}"
            );
        }
        assert!(h.percentile(0.999) <= h.max());
        assert_eq!(Histogram::new().percentile(0.5), 0);
    }
}
