//! Declarative scenario specifications.
//!
//! A [`ScenarioSpec`] is everything one experiment point needs: how many
//! terminals, how big the x-pool and payloads are, which erasure process
//! shapes each data-plane link, how Eve listens, how many concurrent
//! sessions to run, and the RNG seed. A spec is *complete* — running the
//! same spec twice yields bit-identical protocol outcomes — and *small*
//! (cloneable, comparable), so grids of thousands of specs are cheap to
//! enumerate and shard.

use std::time::Duration;

use thinair_core::construct::PlanParams;
use thinair_core::estimate::{Estimator, Tuning};
use thinair_core::round::XSchedule;
use thinair_net::session::SessionConfig;
use thinair_netsim::{splitmix64, ErasureModel, FaultPlan};

/// How the eavesdropper listens to a scenario.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EveSpec {
    /// Number of independent receiver positions ("antennas", §6 of the
    /// paper). Eve's knowledge is the union of what they hear.
    pub antennas: usize,
    /// The erasure process of each Eve antenna's channel. `None` gives
    /// Eve the same model as the terminals — Figure 1's symmetric
    /// assumption ("as well as Alice and Eve, is the same").
    pub erasure: Option<ErasureModel>,
}

impl Default for EveSpec {
    fn default() -> Self {
        EveSpec { antennas: 1, erasure: None }
    }
}

/// Which Eve-erasure estimator the protocol runs (the digestable subset
/// of [`Estimator`] that works without ground truth).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EstimatorSpec {
    /// The leave-one-out estimator (default; what a deployment runs).
    LeaveOneOut,
    /// Assume Eve misses a fixed fraction of every support — Figure 1's
    /// "Alice guesses exactly" idealization when set to the true `p`.
    FixedFraction(f64),
}

impl EstimatorSpec {
    /// The protocol-level estimator this spec selects.
    pub fn to_estimator(self) -> Estimator {
        match self {
            EstimatorSpec::LeaveOneOut => Estimator::LeaveOneOut(Tuning::default()),
            EstimatorSpec::FixedFraction(fraction) => Estimator::FixedFraction { fraction },
        }
    }

    /// Short tag for scenario names.
    pub fn tag(&self) -> String {
        match self {
            EstimatorSpec::LeaveOneOut => "loo".into(),
            EstimatorSpec::FixedFraction(f) => format!("fix{f:.2}"),
        }
    }
}

/// One experiment point: a fully-determined multi-session run.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioSpec {
    /// Human-readable config name (unique within a sweep).
    pub name: String,
    /// Protocol nodes, coordinator included (`>= 2`).
    pub terminals: u8,
    /// x-packets the coordinator broadcasts in phase 1.
    pub x_packets: usize,
    /// Payload bytes per packet.
    pub payload_len: usize,
    /// Data-plane erasure process of every coordinator → terminal link
    /// (independent chains per receiver).
    pub erasure: ErasureModel,
    /// The eavesdropper's observation model.
    pub eve: EveSpec,
    /// The Eve-erasure estimator the terminals run.
    pub estimator: EstimatorSpec,
    /// Concurrent sessions to drive (each with independent payloads and
    /// erasure chains; more sessions average out per-round fluctuation).
    pub sessions: u32,
    /// Root seed: every payload byte, plan seed and erasure chain in the
    /// run derives from it deterministically.
    pub seed: u64,
    /// Adversarial chaos-layer schedule (reorder, duplication,
    /// corruption, delay jitter, partitions, terminal crash/late-join).
    /// Defaults to no faults; its own seed derives from [`Self::seed`]
    /// (see [`Self::fault_seed`]).
    pub faults: FaultPlan,
    /// Per-session deadline in milliseconds. The default (120 s) gives
    /// fault-free runs enormous headroom; soak specs with lifecycle
    /// faults use a short deadline, because every crashed session burns
    /// exactly this long before its survivors abort.
    pub deadline_ms: u64,
}

impl Default for ScenarioSpec {
    fn default() -> Self {
        ScenarioSpec {
            name: "default".into(),
            terminals: 4,
            x_packets: 60,
            payload_len: 32,
            erasure: ErasureModel::Iid { p: 0.5 },
            eve: EveSpec::default(),
            estimator: EstimatorSpec::LeaveOneOut,
            sessions: 2,
            seed: 1,
            faults: FaultPlan::none(),
            deadline_ms: 120_000,
        }
    }
}

impl ScenarioSpec {
    /// Validates the spec against protocol and codec limits.
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.terminals < 2 {
            return Err("need at least two terminals");
        }
        if self.x_packets == 0 || self.x_packets > u16::MAX as usize {
            return Err("x_packets must be in 1..=65535");
        }
        if self.sessions == 0 {
            return Err("need at least one session");
        }
        self.erasure.validate()?;
        if self.eve.antennas == 0 {
            return Err("eve needs at least one antenna (use a dead channel to disable her)");
        }
        if let Some(m) = &self.eve.erasure {
            m.validate()?;
        }
        if let EstimatorSpec::FixedFraction(f) = self.estimator {
            if !(0.0..=1.0).contains(&f) {
                return Err("fixed fraction out of range");
            }
        }
        self.faults.validate()?;
        if self.deadline_ms < 500 {
            return Err("deadline_ms must be at least 500");
        }
        self.session_config().validate().map_err(|_| "session config rejected")?;
        Ok(())
    }

    /// The mean erasure probability of the terminal links — the `p` the
    /// closed-form model is evaluated at. For bursty models this is the
    /// stationary rate; the measured-vs-predicted gap then includes what
    /// burstiness costs.
    pub fn effective_p(&self) -> f64 {
        self.erasure.mean_erasure()
    }

    /// The erasure process on Eve's antennas.
    pub fn eve_model(&self) -> ErasureModel {
        self.eve.erasure.unwrap_or(self.erasure)
    }

    /// The networked-session configuration this spec resolves to: the
    /// medium stays lossless and every data-plane loss comes from the
    /// per-receiver erasure chains, so outcomes are a pure function of
    /// the spec (see `thinair_net::session::drop_pattern`) — with one
    /// caveat: a terminal's reception report is cut when the `x_settle`
    /// timer fires, so a scheduler stall longer than that window could
    /// still truncate a report. The window is set generously (400 ms
    /// against an in-process queue drained in microseconds) to keep that
    /// out of reach in practice.
    pub fn session_config(&self) -> SessionConfig {
        SessionConfig {
            n_nodes: self.terminals,
            coordinator: 0,
            schedule: XSchedule::CoordinatorOnly(self.x_packets),
            payload_len: self.payload_len,
            estimator: self.estimator.to_estimator(),
            plan_params: PlanParams::default(),
            drop_prob: 0.0,
            drop_seed: self.seed,
            drop_models: Some(vec![self.erasure; self.terminals as usize]),
            x_settle: Duration::from_millis(400),
            // The plan caps z-rows at `max_rows` (≤ 128), but a deep-loss
            // receiver needs ~z_count/(1−p) fountain combos; 4096 covers
            // p beyond 0.95 instead of the daemon default's 400.
            max_attempts: 4096,
            deadline: Duration::from_millis(self.deadline_ms),
            ..SessionConfig::default()
        }
    }

    /// The chaos layer's seed: mixed from the root seed with a
    /// fault-only salt, so fault schedules are independent of the
    /// payload and erasure streams yet fully reproducible.
    pub fn fault_seed(&self) -> u64 {
        splitmix64(self.seed ^ 0xFAu64.wrapping_mul(0x9FB2_1C65_1E98_DF25))
    }

    /// The session ids a run drives (1-based, contiguous).
    pub fn session_ids(&self) -> Vec<u64> {
        (1..=self.sessions as u64).collect()
    }

    /// Eve antenna `antenna`'s reception pattern over the x-pool of
    /// `session` (`true` = erased, position = packet id): her chains are
    /// mixed from the spec seed with an Eve-only salt, so she is
    /// independent of every terminal chain yet fully reproducible.
    pub fn eve_pattern(&self, session: u64, antenna: usize) -> Vec<bool> {
        let seed = splitmix64(
            self.seed
                ^ session.rotate_left(17)
                ^ (antenna as u64).wrapping_mul(0xA24B_AED4_963E_E407)
                ^ 0x45u64.wrapping_mul(0x9FB2_1C65_1E98_DF25), // 'E'
        );
        self.eve_model().pattern(seed, self.x_packets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_is_valid() {
        assert_eq!(ScenarioSpec::default().validate(), Ok(()));
    }

    #[test]
    fn validation_catches_bad_specs() {
        let bad = ScenarioSpec { terminals: 1, ..ScenarioSpec::default() };
        assert!(bad.validate().is_err());
        let bad = ScenarioSpec { x_packets: 0, ..ScenarioSpec::default() };
        assert!(bad.validate().is_err());
        let bad = ScenarioSpec { erasure: ErasureModel::Iid { p: 1.5 }, ..ScenarioSpec::default() };
        assert!(bad.validate().is_err());
        let bad =
            ScenarioSpec { eve: EveSpec { antennas: 0, erasure: None }, ..ScenarioSpec::default() };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn session_config_runs_model_chains_not_the_hash() {
        let spec = ScenarioSpec::default();
        let cfg = spec.session_config();
        assert_eq!(cfg.drop_prob, 0.0);
        let models = cfg.drop_models.expect("models set");
        assert_eq!(models.len(), spec.terminals as usize);
        assert_eq!(models[1], spec.erasure);
    }

    #[test]
    fn eve_defaults_to_the_terminal_model() {
        let spec = ScenarioSpec::default();
        assert_eq!(spec.eve_model(), spec.erasure);
        let ge = ErasureModel::GilbertElliott {
            p_good: 0.1,
            p_bad: 0.9,
            good_to_bad: 0.1,
            bad_to_good: 0.4,
        };
        let spec = ScenarioSpec { eve: EveSpec { antennas: 2, erasure: Some(ge) }, ..spec };
        assert_eq!(spec.eve_model(), ge);
    }

    #[test]
    fn eve_patterns_decorrelate_by_session_and_antenna() {
        let spec = ScenarioSpec { x_packets: 400, ..ScenarioSpec::default() };
        assert_eq!(spec.eve_pattern(1, 0), spec.eve_pattern(1, 0));
        assert_ne!(spec.eve_pattern(1, 0), spec.eve_pattern(2, 0));
        assert_ne!(spec.eve_pattern(1, 0), spec.eve_pattern(1, 1));
    }

    #[test]
    fn effective_p_is_the_stationary_rate() {
        let ge = ErasureModel::GilbertElliott {
            p_good: 0.0,
            p_bad: 1.0,
            good_to_bad: 0.1,
            bad_to_good: 0.3,
        };
        let spec = ScenarioSpec { erasure: ge, ..ScenarioSpec::default() };
        assert!((spec.effective_p() - 0.25).abs() < 1e-12);
    }
}
