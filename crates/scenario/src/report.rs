//! The machine-readable artifact (`BENCH_scenarios.json`) and the human
//! summary table.
//!
//! The artifact mirrors `BENCH_micro.json`'s shape — a `schema` tag plus
//! a flat `results` array, one object per scenario config — so the same
//! tooling can track both across commits. Fields split into two classes:
//!
//! * **deterministic** — everything derived from protocol outcomes and
//!   offline audits (`mean_l`, efficiencies, Eve scores, …): a pure
//!   function of each spec, byte-identical across reruns;
//! * **timing** — wall-clock and wire-level counters (`wall_ms`,
//!   `frames_sent`, `bits_transmitted`, `z_sent`): scheduler-sensitive,
//!   excluded when rendering with `include_timing = false` (which is what
//!   the determinism test pins).

use std::io;
use std::path::Path;

use crate::run::ScenarioResult;

/// Artifact schema tag.
pub const SCHEMA: &str = "thinair-scenarios/1";

pub(crate) fn f6(v: f64) -> String {
    format!("{v:.6}")
}

pub(crate) fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn result_json(r: &ScenarioResult, include_timing: bool) -> String {
    let spec = &r.spec;
    let erasure_params =
        spec.erasure.params().iter().map(|p| f6(*p)).collect::<Vec<_>>().join(", ");
    let eve_model = spec.eve_model();
    let mut fields = vec![
        format!("\"name\": \"{}\"", json_escape(&spec.name)),
        format!("\"terminals\": {}", spec.terminals),
        format!("\"x_packets\": {}", spec.x_packets),
        format!("\"payload_len\": {}", spec.payload_len),
        format!(
            "\"erasure\": {{\"kind\": \"{}\", \"params\": [{}], \"mean\": {}}}",
            spec.erasure.kind(),
            erasure_params,
            f6(spec.effective_p())
        ),
        format!(
            "\"eve\": {{\"antennas\": {}, \"kind\": \"{}\", \"mean\": {}}}",
            spec.eve.antennas,
            eve_model.kind(),
            f6(eve_model.mean_erasure())
        ),
        format!("\"estimator\": \"{}\"", spec.estimator.tag()),
        format!("\"sessions\": {}", spec.sessions),
        format!("\"seed\": {}", spec.seed),
        format!("\"n_packets\": {}", r.n_packets),
        format!("\"mean_l\": {}", f6(r.mean_l())),
        format!("\"mean_m\": {}", f6(r.mean_m())),
        format!("\"secret_bits\": {}", r.secret_bits),
        format!("\"measured_efficiency\": {}", f6(r.measured_efficiency())),
        format!("\"predicted_efficiency\": {}", f6(r.prediction.group_efficiency)),
        format!("\"predicted_unicast\": {}", f6(r.prediction.unicast_efficiency)),
        format!("\"efficiency_ratio\": {}", f6(r.efficiency_ratio())),
        {
            let (l_star, m_star) = r.prediction.scaled(r.n_packets);
            format!("\"predicted_l_star\": {}, \"predicted_m_star\": {}", f6(l_star), f6(m_star))
        },
        format!("\"eve_reliability\": {}", f6(r.mean_eve_reliability())),
        format!("\"eve_seen_fraction\": {}", f6(r.mean_eve_seen())),
    ];
    if include_timing {
        fields.push(format!("\"z_sent\": {}", r.z_sent()));
        fields.push(format!("\"frames_sent\": {}", r.frames_sent));
        fields.push(format!("\"bits_transmitted\": {}", r.bits_transmitted));
        fields.push(format!("\"wall_ms\": {:.1}", r.wall_ms));
    }
    format!("    {{{}}}", fields.join(", "))
}

/// Renders the artifact. With `include_timing = false` the output is a
/// pure function of the specs (the determinism contract).
pub fn render_json(results: &[ScenarioResult], include_timing: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    out.push_str("  \"results\": [\n");
    let rows: Vec<String> = results.iter().map(|r| result_json(r, include_timing)).collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

/// Writes the artifact to `path` (timing fields included).
pub fn write_json(path: &Path, results: &[ScenarioResult]) -> io::Result<()> {
    std::fs::write(path, render_json(results, true))
}

/// A fixed-width console summary, one line per config.
pub fn summary_table(results: &[ScenarioResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<26} {:>5} {:>7} {:>7} {:>9} {:>9} {:>6} {:>7}\n",
        "scenario", "n", "mean_l", "mean_m", "measured", "predicted", "ratio", "eve_rel"
    ));
    for r in results {
        out.push_str(&format!(
            "{:<26} {:>5} {:>7.1} {:>7.1} {:>9.4} {:>9.4} {:>6.2} {:>7.3}\n",
            r.spec.name,
            r.spec.terminals,
            r.mean_l(),
            r.mean_m(),
            r.measured_efficiency(),
            r.prediction.group_efficiency,
            r.efficiency_ratio(),
            r.mean_eve_reliability(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::run_scenario;
    use crate::spec::ScenarioSpec;

    fn tiny_result() -> ScenarioResult {
        run_scenario(&ScenarioSpec {
            terminals: 3,
            x_packets: 40,
            payload_len: 8,
            sessions: 1,
            seed: 5,
            ..ScenarioSpec::default()
        })
        .expect("run completes")
    }

    #[test]
    fn artifact_shape_matches_the_bench_convention() {
        let r = tiny_result();
        let json = render_json(std::slice::from_ref(&r), true);
        assert!(json.starts_with("{\n  \"schema\": \"thinair-scenarios/1\""));
        assert!(json.contains("\"results\": ["));
        assert!(json.contains("\"measured_efficiency\""));
        assert!(json.contains("\"wall_ms\""));
    }

    #[test]
    fn timing_fields_are_separable() {
        let r = tiny_result();
        let with = render_json(std::slice::from_ref(&r), true);
        let without = render_json(std::slice::from_ref(&r), false);
        for field in ["wall_ms", "frames_sent", "bits_transmitted", "z_sent"] {
            assert!(with.contains(field), "{field} missing from timing render");
            assert!(!without.contains(field), "{field} leaked into deterministic render");
        }
    }

    #[test]
    fn escaping_handles_odd_names() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("tab\tnl\n"), "tab\\u0009nl\\u000a");
    }

    #[test]
    fn summary_mentions_every_config() {
        let r = tiny_result();
        let table = summary_table(std::slice::from_ref(&r));
        assert!(table.contains(&r.spec.name));
        assert!(table.lines().count() >= 2);
    }
}
