//! The engine: drive one spec's sessions, measure, and score against the
//! model and against Eve.
//!
//! A run executes the spec's sessions *concurrently* over
//! [`thinair_net::driver::drive_sim`] — real coordinator/terminal state
//! machines multiplexed by session id over simulated transports — then
//! audits each session offline:
//!
//! * **Agreement** — every node must hold the identical secret
//!   ([`ScenarioError::Disagreement`] otherwise; it never fires unless
//!   the protocol regresses).
//! * **Model** — the coordinator's [`SessionTrace`] re-derives the plan,
//!   and the achieved `(l, m)` become a measured efficiency comparable
//!   to [`thinair_model::predict`]'s fluid-limit optimum.
//! * **Eve** — each antenna's deterministic reception pattern feeds a
//!   ground-truth [`EveLedger`]; together with the published z-rows it
//!   scores the paper's *reliability* metric exactly.
//!
//! Grids shard across worker threads with
//! [`thinair_testbed::parallel_map`]; each thread hosts its own
//! single-threaded runtime, and specs never share mutable state, so the
//! sharded sweep equals the serial one result-for-result.

use std::time::Instant;

use thinair_core::eve::EveLedger;
use thinair_core::ProtocolError;
use thinair_model::{predict, Prediction};
use thinair_net::driver::drive_sim_chaos;
use thinair_net::session::{derive_plan, AbortReason, NetError, SessionTrace};
use thinair_netsim::IidMedium;
use thinair_testbed::parallel_map;

use crate::spec::ScenarioSpec;

/// Everything that can go wrong running a scenario.
#[derive(Debug)]
pub enum ScenarioError {
    /// The spec itself is malformed.
    Invalid(&'static str),
    /// The networked run failed.
    Net(NetError),
    /// Offline plan re-derivation failed.
    Protocol(ProtocolError),
    /// Nodes finished a session with different secrets.
    Disagreement {
        /// The session whose secrets split.
        session: u64,
    },
    /// A session aborted instead of completing. `run_scenario` measures
    /// completed rounds only; fault schedules that can abort belong in
    /// the soak harness ([`crate::soak`]), which audits aborts instead
    /// of failing on them.
    Aborted {
        /// The aborted session.
        session: u64,
        /// The first aborting node.
        node: u8,
        /// Its structured reason.
        reason: AbortReason,
    },
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::Invalid(what) => write!(f, "invalid spec: {what}"),
            ScenarioError::Net(e) => write!(f, "run failed: {e}"),
            ScenarioError::Protocol(e) => write!(f, "audit failed: {e}"),
            ScenarioError::Disagreement { session } => {
                write!(f, "nodes disagree on the secret of session {session:#x}")
            }
            ScenarioError::Aborted { session, node, reason } => {
                write!(f, "session {session:#x} aborted on node {node}: {reason}")
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<NetError> for ScenarioError {
    fn from(e: NetError) -> Self {
        ScenarioError::Net(e)
    }
}

impl From<ProtocolError> for ScenarioError {
    fn from(e: ProtocolError) -> Self {
        ScenarioError::Protocol(e)
    }
}

/// Per-session measurements of one scenario run.
#[derive(Clone, Debug)]
pub struct SessionMeasurement {
    /// Session id.
    pub session: u64,
    /// Secret length achieved, in packets.
    pub l: usize,
    /// y-rows the plan spent.
    pub m: usize,
    /// z-combos the fountain streamed (timing-sensitive: scheduler
    /// jitter can add top-up combos).
    pub z_sent: u32,
    /// Ground-truth reliability of this session's secret against the
    /// spec's Eve (1.0 = she knows nothing; the paper's `r`).
    pub eve_reliability: f64,
    /// Fraction of the x-pool Eve observed (union over antennas).
    pub eve_seen_fraction: f64,
}

impl SessionMeasurement {
    /// This session's measured efficiency `l / (N + m − l)`.
    pub fn efficiency(&self, n_packets: usize) -> f64 {
        Prediction::measured_efficiency(n_packets, self.m, self.l)
    }
}

/// One scenario's complete measurement record.
#[derive(Clone, Debug)]
pub struct ScenarioResult {
    /// The spec that produced it.
    pub spec: ScenarioSpec,
    /// Resolved x-pool size (packets per session).
    pub n_packets: usize,
    /// Per-session audit, in session-id order.
    pub per_session: Vec<SessionMeasurement>,
    /// The closed-form model's prediction at `(terminals, effective_p)`.
    pub prediction: Prediction,
    /// Total secret bits extracted across sessions.
    pub secret_bits: u64,
    /// Frames put on the air across the whole run (timing-sensitive).
    pub frames_sent: u64,
    /// Bits put on the air across the whole run (timing-sensitive).
    pub bits_transmitted: u64,
    /// Wall-clock duration of the run in milliseconds (timing).
    pub wall_ms: f64,
}

impl ScenarioResult {
    /// Mean secret length over sessions, in packets.
    pub fn mean_l(&self) -> f64 {
        mean(self.per_session.iter().map(|s| s.l as f64))
    }

    /// Mean y-row count over sessions.
    pub fn mean_m(&self) -> f64 {
        mean(self.per_session.iter().map(|s| s.m as f64))
    }

    /// Mean measured efficiency `l / (N + m − l)` over sessions — the
    /// apples-to-apples number against
    /// [`Prediction::group_efficiency`].
    pub fn measured_efficiency(&self) -> f64 {
        mean(self.per_session.iter().map(|s| s.efficiency(self.n_packets)))
    }

    /// Measured over predicted efficiency — the model-vs-measurement
    /// headline (1.0 = the run achieved the fluid-limit optimum).
    pub fn efficiency_ratio(&self) -> f64 {
        let predicted = self.prediction.group_efficiency;
        if predicted <= 0.0 {
            return 0.0;
        }
        self.measured_efficiency() / predicted
    }

    /// Mean ground-truth reliability against the spec's Eve.
    pub fn mean_eve_reliability(&self) -> f64 {
        mean(self.per_session.iter().map(|s| s.eve_reliability))
    }

    /// Mean fraction of the x-pool Eve observed.
    pub fn mean_eve_seen(&self) -> f64 {
        mean(self.per_session.iter().map(|s| s.eve_seen_fraction))
    }

    /// Total z-combos streamed across sessions (timing-sensitive).
    pub fn z_sent(&self) -> u64 {
        self.per_session.iter().map(|s| s.z_sent as u64).sum()
    }
}

fn mean(it: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0f64, 0usize);
    for v in it {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Runs one scenario end-to-end and audits every session.
pub fn run_scenario(spec: &ScenarioSpec) -> Result<ScenarioResult, ScenarioError> {
    spec.validate().map_err(ScenarioError::Invalid)?;
    let cfg = spec.session_config();
    let n_packets = cfg.n_packets();
    let sessions = spec.session_ids();

    // The medium is lossless: every data-plane loss comes from the
    // per-receiver erasure chains in the session config, which keeps the
    // protocol outcome a pure function of the spec (the transport-level
    // frame/bit counters remain scheduler-sensitive and are reported as
    // timing-class measurements).
    let started = Instant::now();
    let run = drive_sim_chaos(
        IidMedium::symmetric(spec.terminals as usize, 0.0, spec.seed),
        &cfg,
        &sessions,
        spec.seed,
        spec.faults,
        spec.fault_seed(),
    )?;
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;

    let mut per_session = Vec::with_capacity(sessions.len());
    let mut secret_bits = 0u64;
    for (outcomes, &session) in run.outcomes.iter().zip(sessions.iter()) {
        if let Some(aborted) = outcomes.iter().find(|o| o.abort.is_some()) {
            return Err(ScenarioError::Aborted {
                session,
                node: aborted.node,
                reason: aborted.abort.clone().expect("found by abort"),
            });
        }
        let coordinator = &outcomes[cfg.coordinator as usize];
        if outcomes.iter().any(|o| o.secret != coordinator.secret) {
            return Err(ScenarioError::Disagreement { session });
        }
        let trace: &SessionTrace =
            coordinator.trace.as_ref().expect("coordinator outcomes carry a trace");
        let plan = derive_plan(&cfg, &trace.reports, trace.plan_seed)?;
        debug_assert_eq!((plan.m(), plan.l), (coordinator.m, coordinator.l));

        // Ground-truth Eve: the union of her antennas' receptions plus
        // the published z-rows (the paper conservatively assumes she
        // hears every reliable broadcast).
        let mut ledger = EveLedger::new(n_packets);
        for antenna in 0..spec.eve.antennas {
            for (id, erased) in spec.eve_pattern(session, antenna).iter().enumerate() {
                if !erased {
                    ledger.note_x(id);
                }
            }
        }
        ledger.note_public_matrix(&plan.z_rows_x());
        let secret_rows = plan.secret_rows_x();

        secret_bits += (coordinator.l * spec.payload_len * 8) as u64;
        per_session.push(SessionMeasurement {
            session,
            l: coordinator.l,
            m: coordinator.m,
            z_sent: trace.z_sent,
            eve_reliability: ledger.reliability(&secret_rows),
            eve_seen_fraction: ledger.received().len() as f64 / n_packets as f64,
        });
    }

    Ok(ScenarioResult {
        spec: spec.clone(),
        n_packets,
        per_session,
        prediction: predict(spec.terminals as usize, spec.effective_p()),
        secret_bits,
        frames_sent: run.frames,
        bits_transmitted: run.bits_transmitted(),
        wall_ms,
    })
}

/// Runs a batch of specs sharded across worker threads (each thread
/// hosts its own runtime; results come back in input order).
pub fn run_specs(specs: &[ScenarioSpec]) -> Vec<Result<ScenarioResult, ScenarioError>> {
    parallel_map(specs, run_scenario)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::EveSpec;
    use thinair_netsim::ErasureModel;

    fn tiny() -> ScenarioSpec {
        ScenarioSpec {
            name: "tiny".into(),
            terminals: 3,
            x_packets: 40,
            payload_len: 8,
            sessions: 1,
            seed: 5,
            ..ScenarioSpec::default()
        }
    }

    #[test]
    fn tiny_scenario_extracts_a_secret_and_scores_it() {
        let r = run_scenario(&tiny()).expect("run completes");
        assert_eq!(r.per_session.len(), 1);
        let s = &r.per_session[0];
        assert!(s.l > 0, "a p=0.5 round should mine a secret");
        assert!(s.m >= s.l);
        assert_eq!(r.secret_bits, (s.l * 8 * 8) as u64);
        assert!(r.measured_efficiency() > 0.0);
        assert!(r.prediction.group_efficiency > 0.0);
        assert!((0.0..=1.0).contains(&s.eve_reliability));
        assert!((0.0..=1.0).contains(&s.eve_seen_fraction));
        assert!(r.frames_sent > 0 && r.bits_transmitted > 0);
    }

    #[test]
    fn deaf_eve_means_perfect_reliability() {
        let spec = ScenarioSpec {
            eve: EveSpec { antennas: 1, erasure: Some(ErasureModel::Iid { p: 1.0 }) },
            ..tiny()
        };
        let r = run_scenario(&spec).expect("run completes");
        assert_eq!(r.mean_eve_seen(), 0.0);
        assert_eq!(r.mean_eve_reliability(), 1.0);
    }

    #[test]
    fn protocol_outcomes_are_seed_deterministic() {
        let spec = ScenarioSpec { sessions: 2, ..tiny() };
        let a = run_scenario(&spec).expect("first run");
        let b = run_scenario(&spec).expect("second run");
        for (x, y) in a.per_session.iter().zip(b.per_session.iter()) {
            assert_eq!((x.l, x.m), (y.l, y.m));
            assert_eq!(x.eve_reliability, y.eve_reliability);
            assert_eq!(x.eve_seen_fraction, y.eve_seen_fraction);
        }
        assert_eq!(a.secret_bits, b.secret_bits);
    }

    #[test]
    fn sharded_batch_matches_serial() {
        let specs: Vec<ScenarioSpec> = (0..4)
            .map(|i| ScenarioSpec { seed: 10 + i, name: format!("s{i}"), ..tiny() })
            .collect();
        let sharded = run_specs(&specs);
        for (spec, result) in specs.iter().zip(sharded.iter()) {
            let serial = run_scenario(spec).expect("serial run");
            let sharded = result.as_ref().expect("sharded run");
            assert_eq!(serial.secret_bits, sharded.secret_bits, "{}", spec.name);
            assert_eq!(
                serial.per_session.iter().map(|s| (s.l, s.m)).collect::<Vec<_>>(),
                sharded.per_session.iter().map(|s| (s.l, s.m)).collect::<Vec<_>>(),
            );
        }
    }
}
