//! `thinair-scenario` — the deterministic many-session experiment
//! engine.
//!
//! The paper's claim is quantitative: secret bits per transmitted packet
//! as a function of erasure probabilities and what Eve overhears. This
//! crate turns that claim into a repeatable pipeline:
//!
//! 1. **Describe** a scenario declaratively ([`spec::ScenarioSpec`]):
//!    terminal count, payload and x-pool sizes, a per-link erasure model
//!    ([`thinair_netsim::ErasureModel`] — iid or Gilbert-Elliott burst
//!    loss), an Eve observation model (antenna count + channel), session
//!    count, and one root seed.
//! 2. **Sweep** a grid of scenarios ([`grid::ScenarioGrid`]), sharded
//!    across worker threads ([`thinair_testbed::parallel_map`]).
//! 3. **Run** each config's sessions concurrently over the real
//!    coordinator/terminal state machines and simulated transports
//!    ([`run::run_scenario`] → [`thinair_net::driver::drive_sim`]).
//! 4. **Audit** every session offline: rebuild the coordinator's plan
//!    from its [`thinair_net::SessionTrace`], score the achieved `(l, m)`
//!    against [`thinair_model::predict`]'s fluid-limit optimum, and feed
//!    a ground-truth [`thinair_core::eve::EveLedger`] from Eve's
//!    deterministic reception patterns to compute the paper's
//!    reliability metric exactly.
//! 5. **Record** a `BENCH_scenarios.json` artifact ([`report`]) in the
//!    `BENCH_micro.json` convention, with timing-class fields clearly
//!    separated from the deterministic measurement.
//!
//! Determinism is the load-bearing property: all data-plane loss comes
//! from per-receiver erasure chains that are pure functions of the spec
//! (`thinair_net::session::drop_pattern`), the medium itself is
//! lossless, and Eve's patterns are derived the same way — so protocol
//! outcomes, efficiencies and Eve scores do not depend on scheduling,
//! thread count, or wall-clock speed (caveat: a scheduler stall longer
//! than the generous x-settle window could still truncate a reception
//! report — see [`spec::ScenarioSpec::session_config`]). Only the
//! wire-level counters (frames, bits, fountain top-ups) and `wall_ms`
//! are timing-class.
//!
//! ```
//! use thinair_scenario::{run_scenario, ScenarioSpec};
//!
//! let spec = ScenarioSpec {
//!     terminals: 3,
//!     x_packets: 40,
//!     payload_len: 8,
//!     sessions: 1,
//!     seed: 5,
//!     ..ScenarioSpec::default()
//! };
//! let result = run_scenario(&spec).expect("scenario completes");
//! assert!(result.measured_efficiency() > 0.0);
//! assert!(result.prediction.group_efficiency > 0.0);
//! // Same spec, same numbers — always.
//! let again = run_scenario(&spec).expect("rerun completes");
//! assert_eq!(result.secret_bits, again.secret_bits);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod explore;
pub mod grid;
pub mod report;
pub mod run;
pub mod serve_bench;
pub mod soak;
pub mod spec;
pub mod timing;
pub mod trace_check;

pub use explore::{
    explore, explore_bug_spec, explore_default_spec, explore_range_specs, explore_smoke_spec,
    explore_summary_table, render_explore_json, run_explore_specs, write_explore_json, Choice,
    Counterexample, ExploreEvent, ExploreResult, ExploreSpec, EXPLORE_SCHEMA,
};
pub use grid::{full_grid, golden_spec, smoke_specs, ScenarioGrid};
pub use report::{render_json, summary_table, write_json, SCHEMA};
pub use run::{run_scenario, run_specs, ScenarioError, ScenarioResult, SessionMeasurement};
pub use serve_bench::{
    render_serve_json, run_serve_wave, serve_chaos_plan, serve_ramp_specs, serve_smoke_specs,
    serve_summary_table, write_serve_json, ServeBackend, ServeWaveResult, ServeWaveSpec,
    SERVE_SCHEMA,
};
pub use soak::{
    audit_session, render_soak_json, run_soak, run_soak_specs, soak_smoke_specs, soak_specs,
    soak_summary_table, write_soak_json, SessionVerdict, SoakResult, SOAK_SCHEMA,
};
pub use spec::{EstimatorSpec, EveSpec, ScenarioSpec};
pub use trace_check::{check_trace, TraceReport};
