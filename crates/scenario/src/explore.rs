//! The exhaustive interleaving explorer: model-checking-lite over the
//! *real* coordinator/terminal state machines.
//!
//! The soak harness ([`crate::soak`]) samples fault schedules; this
//! module *enumerates* them. For a small configuration (2–3 terminals,
//! a short x-pool, bounded drop budgets) it drives one session through
//! every meaningfully distinct delivery interleaving and fault
//! placement, audits each execution against the safety invariant
//! ([`crate::soak::audit_session`]), and — on a violation — shrinks the
//! schedule to a minimal frame-level counterexample.
//!
//! # How an execution runs
//!
//! Each execution is a fresh, fully deterministic run of the unmodified
//! state machines:
//!
//! * the [`thinair_net::SimNet`] transport runs in **stepped mode**
//!   ([`thinair_net::SimNet::stepper`]): transmitted frames park in a
//!   pending set instead of landing in receiver queues, and the
//!   explorer decides which pending delivery fires next (or is
//!   dropped — the explorer-placed erasure);
//! * the runtime runs under a **virtual clock**
//!   ([`thinair_net::rt::block_on_virtual`]): whenever every task
//!   blocks, the explorer's stall hook makes the next scheduling
//!   decision; only when the pending set is empty does time jump to the
//!   earliest timer deadline ("maximal progress" — frames are never
//!   held across a timer firing, which is itself a partial-order
//!   reduction: delay behaviors are the RTO/retransmit layer's job and
//!   the soak grid's, not this enumerator's).
//!
//! An execution is therefore a pure function of the *choice path* — the
//! sequence of decisions the hook makes — which makes stateless replay,
//! DFS expansion and schedule shrinking all trivial.
//!
//! # Partial-order reduction
//!
//! Nodes observe only their own delivery order, so two deliveries to
//! *different* destinations commute: interleaving them one way or the
//! other yields identical per-node observation sequences. The explorer
//! canonicalizes away that redundancy: at each decision point it only
//! branches over the pending frames addressed to the **lowest-numbered
//! destination** with anything pending (`Deliver` any of them, or
//! `Drop` any of them while the drop budget lasts). Every combination
//! of per-destination delivery orders and drop placements is still
//! reachable — the choices merely arrive in a canonical global order.
//! Alternatives skipped by the rule are counted (`por_pruned`), as are
//! subtrees cut because an execution's behavior fingerprint (per-node
//! delivery sequences + drops + outcomes) was already seen
//! (`fp_pruned`); together they give the reported reduction factor.
//!
//! # Shrinking
//!
//! A violating path is reduced to its *deviations* — the decisions that
//! differ from the FIFO default. Greedy single-deviation removal runs
//! to fixpoint, then a delta-debugging (ddmin) pass removes whole
//! chunks greedy can miss. Every candidate subset is validated by
//! re-running it; a deviation whose decision point no longer offers the
//! recorded choice decays to the default, so subsets are always
//! executable. The minimal schedule is rendered as a frame-level causal
//! trace (control-plane milestones plus every deviation, retransmission
//! duplicates collapsed) and as TraceEvent JSONL from the telemetry
//! ring.

use std::collections::BTreeSet;
use std::io;
use std::ops::Range;
use std::path::Path;
use std::time::Duration;

use thinair_core::estimate::Estimator;
use thinair_core::round::XSchedule;
use thinair_net::driver::task_seed;
use thinair_net::rt;
use thinair_net::session::SessionConfig;
use thinair_net::{Node, PendingDelivery, SessionOutcome, SimNet, StepHandle};
use thinair_netsim::IidMedium;
use thinair_testbed::parallel_map;

use crate::report::{f6, json_escape};
use crate::run::ScenarioError;
use crate::soak::{audit_session, SessionVerdict};

/// Explore artifact schema tag.
pub const EXPLORE_SCHEMA: &str = "thinair-explore/1";

/// Hard per-execution ceiling on scheduling decisions — a circuit
/// breaker against runaway retransmission storms, far above any real
/// run of the small configs this module accepts. Past it the hook stops
/// delivering; pending frames starve and the session aborts at its
/// (virtual) deadline, so the execution still terminates cleanly.
const STEP_CAP: usize = 100_000;

/// One small configuration to enumerate exhaustively.
#[derive(Clone, Debug, PartialEq)]
pub struct ExploreSpec {
    /// Human-readable name (unique within a batch).
    pub name: String,
    /// Protocol nodes, coordinator included (`>= 2`, keep it small —
    /// the tree is exponential in everything).
    pub terminals: u8,
    /// x-packets the coordinator broadcasts in phase 1.
    pub x_packets: usize,
    /// Payload bytes per packet.
    pub payload_len: usize,
    /// Decision horizon: only the first `depth` scheduling decisions
    /// branch; beyond it every execution continues with the FIFO
    /// default. Bounds the DFS.
    pub depth: usize,
    /// Most explorer-placed frame drops per execution.
    pub drop_budget: usize,
    /// Ceiling on executions (a budget, not a target; `exhausted` in
    /// the result says whether the tree was fully enumerated under it).
    pub max_executions: u64,
    /// Stop exploring once this many violations have been found and
    /// shrunk (0 behaves as 1).
    pub max_violations: usize,
    /// Root seed for payloads and plan seeds.
    pub seed: u64,
    /// Per-session deadline in **virtual** milliseconds.
    pub deadline_ms: u64,
    /// Plant the seeded ordering bug
    /// ([`SessionConfig::bug_premature_plan`]) — the explorer
    /// self-test: the run must find and shrink it.
    pub seeded_bug: bool,
}

impl Default for ExploreSpec {
    fn default() -> Self {
        ExploreSpec {
            name: "explore".into(),
            terminals: 3,
            x_packets: 4,
            payload_len: 4,
            depth: 18,
            drop_budget: 2,
            max_executions: 200_000,
            max_violations: 1,
            seed: 1,
            deadline_ms: 2_000,
            seeded_bug: false,
        }
    }
}

impl ExploreSpec {
    /// Validates the spec against protocol limits and tree-size sanity.
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.terminals < 2 {
            return Err("need at least two nodes");
        }
        if self.terminals > 4 {
            return Err("explore is exponential; keep it to at most 4 nodes");
        }
        if self.x_packets == 0 || self.x_packets > 16 {
            return Err("x_packets must be in 1..=16 (the tree is exponential)");
        }
        if self.payload_len == 0 {
            return Err("payload_len must be nonzero");
        }
        if self.depth == 0 {
            return Err("depth must be nonzero");
        }
        if self.max_executions == 0 {
            return Err("max_executions must be nonzero");
        }
        if self.deadline_ms < 500 {
            return Err("deadline_ms must be at least 500");
        }
        self.session_config().validate().map_err(|_| "session config rejected")?;
        Ok(())
    }

    /// The session configuration an execution runs: lossless medium (the
    /// explorer itself places every drop), tight timers so retransmit
    /// behavior shows up within the decision horizon, and a small
    /// attempt budget so explorer-starved frames abort cleanly instead
    /// of retransmitting forever.
    pub fn session_config(&self) -> SessionConfig {
        SessionConfig {
            n_nodes: self.terminals,
            coordinator: 0,
            schedule: XSchedule::CoordinatorOnly(self.x_packets),
            payload_len: self.payload_len,
            // Fixed-fraction Eve estimate: with a lossless medium the
            // leave-one-out estimator would conclude Eve heard
            // everything and set l = 0 on every branch — making all
            // plans trivially identical. Assuming Eve misses half keeps
            // real secrets (and real plan divergence) in play.
            estimator: Estimator::FixedFraction { fraction: 0.5 },
            drop_prob: 0.0,
            drop_seed: self.seed,
            drop_models: None,
            retransmit: Duration::from_millis(25),
            rto_cap: Duration::from_millis(400),
            x_settle: Duration::from_millis(40),
            deadline: Duration::from_millis(self.deadline_ms),
            max_attempts: 12,
            z_budget: 64,
            bug_premature_plan: self.seeded_bug,
            ..SessionConfig::default()
        }
    }
}

/// One scheduling decision: which of the canonical candidates (pending
/// frames addressed to the lowest-numbered destination, oldest first)
/// to act on. `Deliver(0)` is the FIFO default.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Choice {
    /// Fire candidate `rank`.
    Deliver(usize),
    /// Drop candidate `rank` (consumes drop budget).
    Drop(usize),
}

const DEFAULT_CHOICE: Choice = Choice::Deliver(0);

/// One frame-level event of a rendered counterexample.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExploreEvent {
    /// `"deliver"` or `"drop"`.
    pub action: &'static str,
    /// Sending node.
    pub src: u8,
    /// Receiving node.
    pub dst: u8,
    /// Payload kind ([`thinair_net::NetPayload::kind_name`]).
    pub kind: &'static str,
    /// Frame sequence number.
    pub seq: u32,
    /// Whether this event deviates from the FIFO default.
    pub deviation: bool,
    /// Identical events collapsed into this one (retransmissions).
    pub repeats: u32,
}

/// A shrunk, rendered safety violation.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// The audit's description of what diverged.
    pub what: String,
    /// Deviations from FIFO delivery in the minimal schedule.
    pub deviations: usize,
    /// The minimal frame-level trace: every deviation plus the
    /// control-plane milestones, duplicates collapsed.
    pub events: Vec<ExploreEvent>,
    /// Human-readable causal rendering of `events`.
    pub explanation: String,
    /// The telemetry trace of the minimal execution, one JSON object
    /// per line (the event sequence is deterministic; `ts_us` stamps
    /// are timing-class).
    pub trace_jsonl: String,
}

/// Aggregated exploration measurements for one spec.
#[derive(Clone, Debug)]
pub struct ExploreResult {
    /// The spec that produced it.
    pub spec: ExploreSpec,
    /// Executions run (each a complete session under one schedule).
    pub executions: u64,
    /// Distinct behavior fingerprints among them.
    pub distinct_schedules: u64,
    /// Total scheduling decisions taken across executions ("states
    /// visited").
    pub states_visited: u64,
    /// Alternatives never enqueued because they commute with a chosen
    /// delivery (the partial-order reduction).
    pub por_pruned: u64,
    /// Alternatives never enqueued because the execution's fingerprint
    /// had already been seen.
    pub fp_pruned: u64,
    /// `(executions + por_pruned + fp_pruned) / executions` — a lower
    /// bound on the blowup the reductions avoided (each pruned
    /// alternative roots a whole subtree).
    pub reduction_factor: f64,
    /// Whether the tree was fully enumerated (no budget cut it short).
    pub exhausted: bool,
    /// Executions that hit the per-run step ceiling (must be 0).
    pub truncated_runs: u64,
    /// Shrunk violations (must be empty for a correct protocol).
    pub violations: Vec<Counterexample>,
    /// Wall-clock duration in ms (timing-class; the virtual clock makes
    /// every other field deterministic).
    pub wall_ms: f64,
}

// ---------------------------------------------------------------------------
// One execution
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug)]
struct DecisionRecord {
    /// Canonical candidates at this point (pending @ lowest dst).
    candidates: usize,
    /// Total pending deliveries (for POR accounting).
    pending: usize,
    /// Whether drop alternatives were available.
    drop_allowed: bool,
    taken: Choice,
}

struct RunRecord {
    taken: Vec<Choice>,
    decisions: Vec<DecisionRecord>,
    events: Vec<ExploreEvent>,
    /// Per-destination rolling hash of the delivered frame identities.
    dst_hashes: Vec<u64>,
    /// Order-independent hash of the dropped frame identities.
    drop_hash: u64,
    drops_used: usize,
    truncated: bool,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_fold(mut h: u64, bytes: &[u8]) -> u64 {
    for b in bytes {
        h = (h ^ u64::from(*b)).wrapping_mul(FNV_PRIME);
    }
    h
}

fn frame_identity(p: &PendingDelivery) -> Vec<u8> {
    let mut id = vec![p.src, p.dst];
    id.extend_from_slice(p.frame.payload.kind_name().as_bytes());
    id.extend_from_slice(&p.frame.seq.to_le_bytes());
    id
}

impl RunRecord {
    fn new(n: usize) -> Self {
        RunRecord {
            taken: Vec::new(),
            decisions: Vec::new(),
            events: Vec::new(),
            dst_hashes: vec![FNV_OFFSET; n],
            drop_hash: 0,
            drops_used: 0,
            truncated: false,
        }
    }

    /// The behavior fingerprint: per-node observation sequences, the
    /// dropped set, and every node's outcome. Executions with equal
    /// fingerprints are behaviorally identical (each node saw the same
    /// frames in the same order), so their subtrees are redundant.
    fn fingerprint(&self, outcomes: &[SessionOutcome]) -> u64 {
        let mut h = FNV_OFFSET;
        for dh in &self.dst_hashes {
            h = fnv_fold(h, &dh.to_le_bytes());
        }
        h = fnv_fold(h, &self.drop_hash.to_le_bytes());
        for o in outcomes {
            h = fnv_fold(h, &[u8::from(o.completed())]);
            h = fnv_fold(h, &(o.l as u64).to_le_bytes());
            h = fnv_fold(h, &(o.m as u64).to_le_bytes());
            if let Some(reason) = &o.abort {
                h = fnv_fold(h, reason.kind().as_bytes());
            }
            for row in &o.secret {
                for g in row {
                    h = fnv_fold(h, &[g.0]);
                }
            }
        }
        h
    }
}

/// The stall hook's body: one scheduling decision. Returns `false`
/// (advance virtual time) only when nothing is pending.
fn step_once(
    spec: &ExploreSpec,
    path: &[Choice],
    step: &StepHandle<IidMedium>,
    rec: &mut RunRecord,
) -> bool {
    let pending = step.pending();
    if pending.is_empty() {
        return false;
    }
    if rec.decisions.len() >= STEP_CAP {
        rec.truncated = true;
        return false;
    }
    let dst_min = pending.iter().map(|(_, p)| p.dst).min().expect("nonempty pending");
    let cands: Vec<&(u64, PendingDelivery)> =
        pending.iter().filter(|(_, p)| p.dst == dst_min).collect();
    let d = rec.decisions.len();
    let drop_allowed = rec.drops_used < spec.drop_budget && d < spec.depth;
    // Forced choices replay exactly (same prefix ⇒ same pending set);
    // out-of-range deviations — which only arise when shrinking mutates
    // the path — decay to the FIFO default and become inert.
    let taken = match path.get(d).copied().unwrap_or(DEFAULT_CHOICE) {
        Choice::Deliver(r) if r < cands.len() => Choice::Deliver(r),
        Choice::Drop(r) if drop_allowed && r < cands.len() => Choice::Drop(r),
        _ => DEFAULT_CHOICE,
    };
    rec.decisions.push(DecisionRecord {
        candidates: cands.len(),
        pending: pending.len(),
        drop_allowed,
        taken,
    });
    rec.taken.push(taken);
    let deviation = taken != DEFAULT_CHOICE;
    match taken {
        Choice::Deliver(r) => {
            let (id, p) = cands[r];
            rec.events.push(ExploreEvent {
                action: "deliver",
                src: p.src,
                dst: p.dst,
                kind: p.frame.payload.kind_name(),
                seq: p.frame.seq,
                deviation,
                repeats: 1,
            });
            rec.dst_hashes[p.dst as usize] =
                fnv_fold(rec.dst_hashes[p.dst as usize], &frame_identity(p));
            step.deliver(*id);
        }
        Choice::Drop(r) => {
            let (id, p) = cands[r];
            rec.events.push(ExploreEvent {
                action: "drop",
                src: p.src,
                dst: p.dst,
                kind: p.frame.payload.kind_name(),
                seq: p.frame.seq,
                deviation: true,
                repeats: 1,
            });
            rec.drop_hash ^= fnv_fold(FNV_OFFSET, &frame_identity(p));
            rec.drops_used += 1;
            step.drop_frame(*id);
        }
    }
    true
}

/// Runs one session to completion under the given choice path (FIFO
/// default past its end). Deterministic: same spec + path ⇒ identical
/// record and outcomes. `base` seeds the virtual clock — every run in a
/// batch shares the caller's stopwatch base, so `run_one` itself never
/// reads the wall clock.
fn run_one(
    spec: &ExploreSpec,
    path: &[Choice],
    base: std::time::Instant,
) -> (RunRecord, Vec<SessionOutcome>) {
    let cfg = spec.session_config();
    let n = cfg.n_nodes as usize;
    let net = SimNet::new(IidMedium::symmetric(n, 0.0, spec.seed), n);
    let step = net.stepper();
    let nodes: Vec<Node<_>> = (0..n).map(|i| Node::new(net.transport(i as u8))).collect();
    let mut rec = RunRecord::new(n);
    let session = 1u64;
    let seed = spec.seed;
    let outcomes = {
        let mut hook = || step_once(spec, path, &step, &mut rec);
        rt::block_on_virtual(
            async move {
                for node in &nodes {
                    node.start_pump();
                }
                let mut handles = Vec::with_capacity(n);
                for (i, node) in nodes.iter().enumerate() {
                    let node = node.clone();
                    let cfg = cfg.clone();
                    let ts = task_seed(seed, session, i as u8);
                    let coord = i as u8 == cfg.coordinator;
                    handles.push(rt::spawn(async move {
                        if coord {
                            node.coordinate(session, cfg, ts).await
                        } else {
                            node.participate(session, cfg, ts).await
                        }
                    }));
                }
                let mut outs = Vec::with_capacity(n);
                for h in handles {
                    outs.push(h.await.expect("virtual sessions terminate cleanly"));
                }
                outs
            },
            base,
            &mut hook,
        )
    };
    (rec, outcomes)
}

// ---------------------------------------------------------------------------
// The DFS
// ---------------------------------------------------------------------------

fn alternatives_of(dec: &DecisionRecord) -> Vec<Choice> {
    let mut alts = Vec::new();
    for r in 0..dec.candidates {
        let c = Choice::Deliver(r);
        if c != dec.taken {
            alts.push(c);
        }
    }
    if dec.drop_allowed {
        for r in 0..dec.candidates {
            let c = Choice::Drop(r);
            if c != dec.taken {
                alts.push(c);
            }
        }
    }
    alts
}

/// Alternatives a run would enqueue below the forced prefix — the count
/// skipped when a repeated fingerprint prunes the subtree.
fn alternatives_below(rec: &RunRecord, from: usize, depth: usize) -> u64 {
    let horizon = rec.decisions.len().min(depth);
    rec.decisions[from.min(horizon)..horizon]
        .iter()
        .map(|dec| alternatives_of(dec).len() as u64)
        .sum()
}

/// Exhaustively enumerates the spec's schedule tree, auditing every
/// execution; violations are shrunk to minimal counterexamples.
pub fn explore(spec: &ExploreSpec) -> Result<ExploreResult, ScenarioError> {
    spec.validate().map_err(ScenarioError::Invalid)?;
    let clock = crate::timing::Stopwatch::start();
    let mut stack: Vec<Vec<Choice>> = vec![Vec::new()];
    let mut seen: BTreeSet<u64> = BTreeSet::new();
    let (mut executions, mut states_visited) = (0u64, 0u64);
    let (mut por_pruned, mut fp_pruned) = (0u64, 0u64);
    let mut truncated_runs = 0u64;
    let mut violations: Vec<Counterexample> = Vec::new();
    let mut exhausted = true;
    let violation_cap = spec.max_violations.max(1);

    while let Some(path) = stack.pop() {
        if executions >= spec.max_executions {
            exhausted = false;
            break;
        }
        let (rec, outcomes) = run_one(spec, &path, clock.base());
        executions += 1;
        states_visited += rec.decisions.len() as u64;
        if rec.truncated {
            truncated_runs += 1;
        }
        if let SessionVerdict::Violation { what } = audit_session(&outcomes) {
            violations.push(shrink_and_render(spec, &rec.taken, what, clock.base()));
            if violations.len() >= violation_cap {
                exhausted = false;
                break;
            }
            continue; // don't grow the tree below a violating schedule
        }
        if !seen.insert(rec.fingerprint(&outcomes)) {
            fp_pruned += alternatives_below(&rec, path.len(), spec.depth);
            continue;
        }
        let horizon = rec.decisions.len().min(spec.depth);
        for d in path.len()..horizon {
            let dec = &rec.decisions[d];
            // Deliveries to other destinations commute with the chosen
            // one; their Deliver (and Drop) alternatives are the POR cut.
            let commuting = (dec.pending - dec.candidates) as u64;
            por_pruned += commuting * if dec.drop_allowed { 2 } else { 1 };
            for alt in alternatives_of(dec) {
                let mut child = rec.taken[..d].to_vec();
                child.push(alt);
                stack.push(child);
            }
        }
    }

    let wall_ms = clock.elapsed_ms();
    Ok(ExploreResult {
        spec: spec.clone(),
        executions,
        distinct_schedules: seen.len() as u64,
        states_visited,
        por_pruned,
        fp_pruned,
        reduction_factor: (executions + por_pruned + fp_pruned) as f64 / executions.max(1) as f64,
        exhausted,
        truncated_runs,
        violations,
        wall_ms,
    })
}

/// Runs a batch of explore specs sharded across worker threads.
pub fn run_explore_specs(specs: &[ExploreSpec]) -> Vec<Result<ExploreResult, ScenarioError>> {
    parallel_map(specs, explore)
}

// ---------------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------------

/// The non-default decisions of a taken path, as `(index, choice)`.
fn deviations_of(taken: &[Choice]) -> Vec<(usize, Choice)> {
    taken.iter().enumerate().filter(|(_, c)| **c != DEFAULT_CHOICE).map(|(d, c)| (d, *c)).collect()
}

fn path_from(devs: &[(usize, Choice)]) -> Vec<Choice> {
    let len = devs.iter().map(|(d, _)| d + 1).max().unwrap_or(0);
    let mut path = vec![DEFAULT_CHOICE; len];
    for (d, c) in devs {
        path[*d] = *c;
    }
    path
}

fn violates(
    spec: &ExploreSpec,
    devs: &[(usize, Choice)],
    base: std::time::Instant,
) -> Option<(RunRecord, String)> {
    let (rec, outcomes) = run_one(spec, &path_from(devs), base);
    match audit_session(&outcomes) {
        SessionVerdict::Violation { what } => Some((rec, what)),
        _ => None,
    }
}

/// Greedy single-deviation removal to fixpoint, then a ddmin pass for
/// the chunk removals greedy misses. Every step re-runs and re-audits.
fn shrink(
    spec: &ExploreSpec,
    mut devs: Vec<(usize, Choice)>,
    base: std::time::Instant,
) -> Vec<(usize, Choice)> {
    'greedy: loop {
        for i in 0..devs.len() {
            let mut t = devs.clone();
            t.remove(i);
            if violates(spec, &t, base).is_some() {
                devs = t;
                continue 'greedy;
            }
        }
        break;
    }
    // ddmin: remove complement-of-chunk subsets at doubling granularity.
    let mut n = 2usize;
    while devs.len() >= 2 {
        let chunk = devs.len().div_ceil(n);
        let mut reduced = false;
        for start in (0..devs.len()).step_by(chunk) {
            let end = (start + chunk).min(devs.len());
            let t: Vec<_> = devs[..start].iter().chain(devs[end..].iter()).cloned().collect();
            if violates(spec, &t, base).is_some() {
                devs = t;
                n = 2.max(n - 1);
                reduced = true;
                break;
            }
        }
        if !reduced {
            if n >= devs.len() {
                break;
            }
            n = (n * 2).min(devs.len());
        }
    }
    devs
}

/// The control-plane milestones a counterexample keeps alongside its
/// deviations (x-packets and ACKs are noise at counterexample scale).
const MILESTONES: [&str; 7] =
    ["Start", "ReceptionReport", "PlanAnnounce", "YAnnounce", "SAnnounce", "Done", "Fin"];

fn filter_events(events: &[ExploreEvent]) -> Vec<ExploreEvent> {
    let mut out: Vec<ExploreEvent> = Vec::new();
    for e in events {
        if !e.deviation && !MILESTONES.contains(&e.kind) {
            continue;
        }
        // Collapse retransmissions: same action on the same frame.
        if let Some(prev) = out.iter_mut().find(|p| {
            p.action == e.action
                && p.src == e.src
                && p.dst == e.dst
                && p.kind == e.kind
                && p.seq == e.seq
        }) {
            prev.repeats += 1;
            prev.deviation |= e.deviation;
            continue;
        }
        out.push(e.clone());
    }
    out
}

fn render_explanation(what: &str, deviations: usize, events: &[ExploreEvent]) -> String {
    let mut out = String::new();
    out.push_str(&format!("violation: {what}\n"));
    out.push_str(&format!(
        "minimal schedule: {deviations} deviation(s) from FIFO delivery; \
         frame-level trace ({} events, milestones + deviations):\n",
        events.len()
    ));
    for (i, e) in events.iter().enumerate() {
        let action = if e.action == "drop" { "DROP   " } else { "deliver" };
        let reps = if e.repeats > 1 { format!("  (x{})", e.repeats) } else { String::new() };
        let mark = if e.deviation { "   <- deviation" } else { "" };
        out.push_str(&format!(
            "{:>3}. {action} {:<16} n{} -> n{}  seq {}{reps}{mark}\n",
            i + 1,
            e.kind,
            e.src,
            e.dst,
            e.seq,
        ));
    }
    out.push_str(
        "every event not shown followed FIFO order; the deviation(s) above are the \
         complete cause of the divergence.\n",
    );
    out
}

fn shrink_and_render(
    spec: &ExploreSpec,
    taken: &[Choice],
    what: String,
    base: std::time::Instant,
) -> Counterexample {
    let minimal = shrink(spec, deviations_of(taken), base);
    // Final run of the minimal schedule, with the telemetry trace on so
    // the counterexample ships machine-readable JSONL alongside the
    // frame-level rendering.
    thinair_net::telemetry::enable_trace(thinair_net::telemetry::DEFAULT_TRACE_CAPACITY);
    let (rec, what) = violates(spec, &minimal, base)
        .unwrap_or_else(|| (run_one(spec, &path_from(&minimal), base).0, what));
    let trace_jsonl = thinair_net::telemetry::take_events()
        .iter()
        .map(|e| e.to_jsonl())
        .collect::<Vec<_>>()
        .join("\n");
    let events = filter_events(&rec.events);
    let explanation = render_explanation(&what, minimal.len(), &events);
    Counterexample { what, deviations: minimal.len(), events, explanation, trace_jsonl }
}

// ---------------------------------------------------------------------------
// Presets
// ---------------------------------------------------------------------------

/// The committed-artifact configuration: two terminals plus the
/// coordinator over a short pool, enumerated exhaustively (tens of
/// thousands of distinct schedules).
pub fn explore_default_spec(seed: u64) -> ExploreSpec {
    ExploreSpec {
        name: format!("explore_2term_pool4_s{seed}"),
        depth: 15,
        drop_budget: 2,
        seed,
        ..ExploreSpec::default()
    }
}

/// The CI smoke configuration: the same shape, a shallower horizon.
pub fn explore_smoke_spec(seed: u64) -> ExploreSpec {
    ExploreSpec {
        name: format!("explore_smoke_s{seed}"),
        depth: 12,
        drop_budget: 1,
        seed,
        ..ExploreSpec::default()
    }
}

/// The seeded-bug self-test configuration: the premature-plan ordering
/// bug is planted and the explorer must find and shrink it.
pub fn explore_bug_spec(seed: u64) -> ExploreSpec {
    ExploreSpec {
        name: format!("explore_seeded_bug_s{seed}"),
        depth: 18,
        drop_budget: 2,
        seeded_bug: true,
        seed,
        ..ExploreSpec::default()
    }
}

/// One spec per seed in `seeds` (the CLI's `--seed-range A..B`).
pub fn explore_range_specs(base: &ExploreSpec, seeds: Range<u64>) -> Vec<ExploreSpec> {
    let stem =
        base.name.strip_suffix(&format!("_s{}", base.seed)).unwrap_or(&base.name).to_string();
    seeds
        .map(|seed| ExploreSpec { name: format!("{stem}_s{seed}"), seed, ..base.clone() })
        .collect()
}

// ---------------------------------------------------------------------------
// The artifact
// ---------------------------------------------------------------------------

fn event_json(e: &ExploreEvent) -> String {
    format!(
        "{{\"action\": \"{}\", \"kind\": \"{}\", \"src\": {}, \"dst\": {}, \"seq\": {}, \
         \"deviation\": {}, \"repeats\": {}}}",
        e.action, e.kind, e.src, e.dst, e.seq, e.deviation, e.repeats
    )
}

fn counterexample_json(cx: &Counterexample) -> String {
    let events = cx.events.iter().map(event_json).collect::<Vec<_>>().join(", ");
    format!(
        "{{\"what\": \"{}\", \"deviations\": {}, \"events\": [{events}]}}",
        json_escape(&cx.what),
        cx.deviations
    )
}

fn result_json(r: &ExploreResult, include_timing: bool) -> String {
    let spec = &r.spec;
    let counterexamples =
        r.violations.iter().map(counterexample_json).collect::<Vec<_>>().join(", ");
    let mut fields = vec![
        format!("\"name\": \"{}\"", json_escape(&spec.name)),
        format!("\"terminals\": {}", spec.terminals),
        format!("\"x_packets\": {}", spec.x_packets),
        format!("\"payload_len\": {}", spec.payload_len),
        format!("\"depth\": {}", spec.depth),
        format!("\"drop_budget\": {}", spec.drop_budget),
        format!("\"seed\": {}", spec.seed),
        format!("\"seeded_bug\": {}", spec.seeded_bug),
        format!("\"executions\": {}", r.executions),
        format!("\"distinct_schedules\": {}", r.distinct_schedules),
        format!("\"states_visited\": {}", r.states_visited),
        format!("\"por_pruned\": {}", r.por_pruned),
        format!("\"fp_pruned\": {}", r.fp_pruned),
        format!("\"reduction_factor\": {}", f6(r.reduction_factor)),
        format!("\"exhausted\": {}", r.exhausted),
        format!("\"truncated_runs\": {}", r.truncated_runs),
        format!("\"violations\": {}", r.violations.len()),
        format!("\"counterexamples\": [{counterexamples}]"),
    ];
    if include_timing {
        fields.push(format!("\"wall_ms\": {:.1}", r.wall_ms));
    }
    format!("    {{{}}}", fields.join(", "))
}

/// Renders the explore artifact. With `include_timing = false` the
/// output is a pure function of the specs (virtual time makes even the
/// schedule counts deterministic; only `wall_ms` is timing-class).
pub fn render_explore_json(results: &[ExploreResult], include_timing: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{EXPLORE_SCHEMA}\",\n"));
    out.push_str("  \"results\": [\n");
    let rows: Vec<String> = results.iter().map(|r| result_json(r, include_timing)).collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

/// Writes the explore artifact to `path` (timing fields included).
pub fn write_explore_json(path: &Path, results: &[ExploreResult]) -> io::Result<()> {
    std::fs::write(path, render_explore_json(results, true))
}

/// A fixed-width console summary, one line per explored spec.
pub fn explore_summary_table(results: &[ExploreResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<28} {:>10} {:>10} {:>10} {:>9} {:>10} {:>10}\n",
        "explore spec", "executions", "distinct", "states", "reduction", "exhausted", "violations"
    ));
    for r in results {
        out.push_str(&format!(
            "{:<28} {:>10} {:>10} {:>10} {:>9.2} {:>10} {:>10}\n",
            r.spec.name,
            r.executions,
            r.distinct_schedules,
            r.states_visited,
            r.reduction_factor,
            r.exhausted,
            r.violations.len(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        assert_eq!(explore_default_spec(1).validate(), Ok(()));
        assert_eq!(explore_smoke_spec(1).validate(), Ok(()));
        assert_eq!(explore_bug_spec(1).validate(), Ok(()));
    }

    #[test]
    fn validation_catches_bad_specs() {
        let bad = ExploreSpec { terminals: 1, ..ExploreSpec::default() };
        assert!(bad.validate().is_err());
        let bad = ExploreSpec { terminals: 9, ..ExploreSpec::default() };
        assert!(bad.validate().is_err());
        let bad = ExploreSpec { x_packets: 0, ..ExploreSpec::default() };
        assert!(bad.validate().is_err());
        let bad = ExploreSpec { depth: 0, ..ExploreSpec::default() };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn default_schedule_completes_cleanly() {
        let spec = ExploreSpec::default();
        let (rec, outcomes) = run_one(&spec, &[], std::time::Instant::now());
        assert!(!rec.truncated);
        assert!(rec.decisions.iter().all(|d| d.taken == DEFAULT_CHOICE));
        assert!(matches!(audit_session(&outcomes), SessionVerdict::Agreed { .. }));
    }

    #[test]
    fn executions_replay_deterministically() {
        let spec = ExploreSpec::default();
        let path = [Choice::Deliver(0), Choice::Drop(0)];
        // Different wall-clock bases on purpose: the record must not
        // depend on the base instant.
        let (a, outs_a) = run_one(&spec, &path, std::time::Instant::now());
        let (b, outs_b) = run_one(&spec, &path, std::time::Instant::now());
        assert_eq!(a.taken, b.taken);
        assert_eq!(a.events, b.events);
        assert_eq!(a.fingerprint(&outs_a), b.fingerprint(&outs_b));
    }

    #[test]
    fn small_exploration_is_exhaustive_and_clean() {
        let spec =
            ExploreSpec { name: "tiny".into(), depth: 8, drop_budget: 1, ..ExploreSpec::default() };
        let r = explore(&spec).expect("explores");
        assert!(r.exhausted, "tiny tree must be fully enumerated");
        assert!(r.violations.is_empty(), "the protocol must be safe under every schedule");
        assert_eq!(r.truncated_runs, 0);
        assert!(r.executions > 8, "got only {} executions", r.executions);
        assert!(r.distinct_schedules > 1);
        assert!(r.reduction_factor >= 1.0);
    }

    #[test]
    fn seeded_bug_is_found_and_shrunk_to_a_minimal_trace() {
        let r = explore(&explore_bug_spec(1)).expect("explores");
        assert!(
            !r.violations.is_empty(),
            "the planted premature-plan bug must be found (ran {} schedules)",
            r.executions
        );
        let cx = &r.violations[0];
        assert!(cx.deviations >= 1, "a violation needs at least one deviation");
        assert!(
            cx.deviations <= 2,
            "shrinking must reduce to <= 2 deviations, got {}",
            cx.deviations
        );
        assert!(
            cx.events.len() <= 15,
            "minimal frame-level trace must be <= 15 events, got {}",
            cx.events.len()
        );
        assert!(cx.events.iter().any(|e| e.deviation), "the trace must show the deviation");
        assert!(!cx.trace_jsonl.is_empty(), "counterexample ships a telemetry trace");
        assert!(cx.explanation.contains("deviation"));
    }
}
