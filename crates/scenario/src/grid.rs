//! Grid sweeps: the cross-product of scenario dimensions.
//!
//! A [`ScenarioGrid`] names the axes; [`ScenarioGrid::expand`] produces
//! one [`ScenarioSpec`] per point with a derived name and a per-point
//! seed (mixed from the grid seed and the point index, so reordering an
//! axis changes which seed each point gets but the same grid always
//! expands identically).

use thinair_netsim::{splitmix64, ErasureModel, FaultPlan};

use crate::spec::{EstimatorSpec, EveSpec, ScenarioSpec};

/// Axes of a scenario sweep; every combination becomes one spec.
#[derive(Clone, Debug)]
pub struct ScenarioGrid {
    /// Terminal counts to sweep.
    pub terminals: Vec<u8>,
    /// x-pool sizes to sweep.
    pub x_packets: Vec<usize>,
    /// Payload sizes to sweep.
    pub payload_len: Vec<usize>,
    /// Erasure models to sweep.
    pub erasure: Vec<ErasureModel>,
    /// Eve observation models to sweep.
    pub eve: Vec<EveSpec>,
    /// Chaos-layer fault schedules to sweep (default: just the clean
    /// plan). The soak harness crosses this axis.
    pub faults: Vec<FaultPlan>,
    /// Estimator (one per grid; sweeps rarely cross this axis).
    pub estimator: EstimatorSpec,
    /// Concurrent sessions per point.
    pub sessions: u32,
    /// Grid seed; each point derives its own.
    pub seed: u64,
}

impl Default for ScenarioGrid {
    fn default() -> Self {
        ScenarioGrid {
            terminals: vec![4],
            x_packets: vec![60],
            payload_len: vec![32],
            erasure: vec![ErasureModel::Iid { p: 0.5 }],
            eve: vec![EveSpec::default()],
            faults: vec![FaultPlan::none()],
            estimator: EstimatorSpec::LeaveOneOut,
            sessions: 2,
            seed: 1,
        }
    }
}

impl ScenarioGrid {
    /// Number of points the grid expands to.
    pub fn len(&self) -> usize {
        self.terminals.len()
            * self.x_packets.len()
            * self.payload_len.len()
            * self.erasure.len()
            * self.eve.len()
            * self.faults.len()
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The cross-product, in axis-nested order (terminals outermost,
    /// eve innermost). Names are guaranteed unique: points whose derived
    /// name collides (e.g. two Gilbert-Elliott models with the same
    /// stationary mean) get a `#2`, `#3`, … suffix in axis order.
    pub fn expand(&self) -> Vec<ScenarioSpec> {
        let mut specs = Vec::with_capacity(self.len());
        let mut seen: std::collections::BTreeMap<String, usize> = Default::default();
        for &terminals in &self.terminals {
            for &x_packets in &self.x_packets {
                for &payload_len in &self.payload_len {
                    for &erasure in &self.erasure {
                        for &eve in &self.eve {
                            for &faults in &self.faults {
                                let index = specs.len() as u64;
                                let mut base =
                                    point_name(terminals, x_packets, payload_len, &erasure, &eve);
                                if !faults.is_none() {
                                    base.push('_');
                                    base.push_str(&faults.tag());
                                }
                                let count = seen.entry(base.clone()).or_insert(0);
                                *count += 1;
                                let name =
                                    if *count == 1 { base } else { format!("{base}#{count}") };
                                specs.push(ScenarioSpec {
                                    name,
                                    terminals,
                                    x_packets,
                                    payload_len,
                                    erasure,
                                    eve,
                                    estimator: self.estimator,
                                    sessions: self.sessions,
                                    seed: mix(self.seed, index),
                                    faults,
                                    ..ScenarioSpec::default()
                                });
                            }
                        }
                    }
                }
            }
        }
        specs
    }
}

fn point_name(
    terminals: u8,
    x_packets: usize,
    payload_len: usize,
    erasure: &ErasureModel,
    eve: &EveSpec,
) -> String {
    let mut name = format!(
        "n{terminals}_x{x_packets}_pl{payload_len}_{}{:.2}",
        erasure.kind(),
        erasure.mean_erasure()
    );
    if eve.antennas != 1 || eve.erasure.is_some() {
        name.push_str(&format!("_eve{}", eve.antennas));
        if let Some(m) = &eve.erasure {
            name.push_str(&format!("{}{:.2}", m.kind(), m.mean_erasure()));
        }
    }
    name
}

fn mix(seed: u64, index: u64) -> u64 {
    splitmix64(seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// The smoke sweep behind `thinaird bench-scenario --smoke` and the CI
/// job: four configs spanning all three acceptance axes — erasure model
/// (iid vs Gilbert-Elliott), terminal count, and payload size — small
/// enough to finish in seconds.
pub fn smoke_specs(seed: u64) -> Vec<ScenarioSpec> {
    let ge = ErasureModel::GilbertElliott {
        p_good: 0.1,
        p_bad: 0.9,
        good_to_bad: 0.15,
        bad_to_good: 0.3,
    };
    let base = ScenarioSpec { sessions: 2, ..ScenarioSpec::default() };
    let points = [
        ("iid: the Figure-1 baseline", 4u8, 60usize, 32usize, ErasureModel::Iid { p: 0.5 }),
        ("gilbert-elliott burst loss", 4, 60, 32, ge),
        ("small group, fat payloads", 3, 60, 64, ErasureModel::Iid { p: 0.5 }),
        ("bigger group, lean payloads", 6, 90, 16, ErasureModel::Iid { p: 0.4 }),
    ];
    points
        .iter()
        .enumerate()
        .map(|(i, &(_, terminals, x_packets, payload_len, erasure))| ScenarioSpec {
            name: point_name(terminals, x_packets, payload_len, &erasure, &EveSpec::default()),
            terminals,
            x_packets,
            payload_len,
            erasure,
            seed: mix(seed, i as u64),
            ..base.clone()
        })
        .collect()
}

/// The pinned golden scenario: the one config whose measured efficiency
/// is regression-pinned against `thinair_model::predict` (see
/// `tests/golden.rs`; re-record exact values with
/// `examples/golden_probe.rs` — both use this function, so they can
/// never drift apart). It matches Figure 1's assumptions as closely as
/// a finite run can: symmetric iid `p = 0.5`, Eve on the same channel,
/// and the fixed-fraction "Alice guesses exactly" estimator.
pub fn golden_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "golden".into(),
        terminals: 3,
        x_packets: 200,
        payload_len: 16,
        estimator: EstimatorSpec::FixedFraction(0.5),
        sessions: 4,
        seed: 7,
        ..ScenarioSpec::default()
    }
}

/// The full default sweep behind `thinaird bench-scenario` without
/// `--smoke`: erasure probabilities and burstiness × group sizes.
pub fn full_grid(seed: u64, sessions: u32) -> ScenarioGrid {
    ScenarioGrid {
        terminals: vec![3, 4, 6],
        x_packets: vec![60, 120],
        payload_len: vec![32],
        erasure: vec![
            ErasureModel::Iid { p: 0.3 },
            ErasureModel::Iid { p: 0.5 },
            ErasureModel::Iid { p: 0.7 },
            ErasureModel::GilbertElliott {
                p_good: 0.1,
                p_bad: 0.9,
                good_to_bad: 0.15,
                bad_to_good: 0.3,
            },
        ],
        eve: vec![EveSpec::default()],
        faults: vec![FaultPlan::none()],
        estimator: EstimatorSpec::LeaveOneOut,
        sessions,
        seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expand_covers_the_cross_product() {
        let grid = ScenarioGrid {
            terminals: vec![3, 4],
            x_packets: vec![40],
            payload_len: vec![16, 32],
            erasure: vec![ErasureModel::Iid { p: 0.5 }],
            ..ScenarioGrid::default()
        };
        let specs = grid.expand();
        assert_eq!(specs.len(), grid.len());
        assert_eq!(specs.len(), 4);
        // Names are unique and every spec is valid.
        let names: std::collections::BTreeSet<_> = specs.iter().map(|s| s.name.clone()).collect();
        assert_eq!(names.len(), specs.len());
        for s in &specs {
            assert_eq!(s.validate(), Ok(()), "{}", s.name);
        }
    }

    #[test]
    fn colliding_names_get_suffixes() {
        // Two Gilbert-Elliott models with the same stationary mean: the
        // burstiness sweep the grid docs advertise.
        let grid = ScenarioGrid {
            erasure: vec![
                ErasureModel::GilbertElliott {
                    p_good: 0.1,
                    p_bad: 0.9,
                    good_to_bad: 0.15,
                    bad_to_good: 0.3,
                },
                ErasureModel::GilbertElliott {
                    p_good: 0.0,
                    p_bad: 1.0,
                    good_to_bad: 0.11,
                    bad_to_good: 0.19,
                },
            ],
            ..ScenarioGrid::default()
        };
        let specs = grid.expand();
        assert_eq!(specs.len(), 2);
        assert!(
            (specs[0].erasure.mean_erasure() - specs[1].erasure.mean_erasure()).abs() < 1e-12,
            "test premise: equal stationary means"
        );
        assert_ne!(specs[0].name, specs[1].name);
        assert!(specs[1].name.ends_with("#2"), "{}", specs[1].name);
    }

    #[test]
    fn expansion_is_deterministic() {
        let grid = full_grid(7, 2);
        assert_eq!(grid.expand(), grid.expand());
        // A different grid seed shifts every point seed.
        let other = full_grid(8, 2);
        assert!(grid
            .expand()
            .iter()
            .zip(other.expand().iter())
            .all(|(a, b)| a.seed != b.seed && a.name == b.name));
    }

    #[test]
    fn smoke_specs_cover_the_acceptance_axes() {
        let specs = smoke_specs(1);
        assert!(specs.len() >= 3);
        let kinds: std::collections::BTreeSet<_> = specs.iter().map(|s| s.erasure.kind()).collect();
        assert!(kinds.len() >= 2, "must vary the erasure model");
        let terminals: std::collections::BTreeSet<_> = specs.iter().map(|s| s.terminals).collect();
        assert!(terminals.len() >= 2, "must vary the terminal count");
        let payloads: std::collections::BTreeSet<_> = specs.iter().map(|s| s.payload_len).collect();
        assert!(payloads.len() >= 2, "must vary the payload size");
        for s in &specs {
            assert_eq!(s.validate(), Ok(()), "{}", s.name);
        }
    }
}
