//! The soak harness: hundreds of sessions under adversarial faults,
//! audited against the safety invariant.
//!
//! # The safety invariant
//!
//! A session run under a [`thinair_netsim::FaultPlan`] must *safely
//! terminate* on every live node, within the session deadline:
//!
//! 1. **No hangs** — every node returns, either completed or with a
//!    structured [`thinair_net::AbortReason`].
//! 2. **No divergence** — every node that completes holds the
//!    byte-identical secret (and identical `(l, m)`).
//! 3. **Explained aborts** — a session where any node aborts is a clean
//!    abort: the aborting nodes carry machine-readable reasons, and any
//!    nodes that did complete still agree among themselves.
//!
//! Atomic all-or-nothing termination is *not* promised — it is
//! unachievable over a lossy channel with bounded retries (the Two
//! Generals problem): the coordinator can learn every terminal is done
//! and still fail to deliver the final `Fin` to one of them. What the
//! protocol does guarantee — and what this harness checks on every
//! session — is that no node ever *uses* a secret the group did not
//! converge on: completion requires the final barrier, and a node that
//! aborts discards anything it derived.
//!
//! # Determinism
//!
//! Fault verdicts are keyed by frame identity, erasures by packet id,
//! crash/late-join by protocol milestones — so *which* sessions agree,
//! *which* abort, and every secret byte are pure functions of the spec.
//! The aggregates in `BENCH_soak.json` split accordingly: outcome
//! counts, abort-reason histograms and mean `(l, m)` are
//! deterministic; wall-clock, frame counters and fault-injection totals
//! (retransmissions re-draw verdicts) are timing-class and excluded
//! from the determinism contract. One caveat (the soak analogue of the
//! scenario engine's x-settle caveat): sessions race real wall-clock
//! deadlines, so the outcome counts are pure functions of the spec only
//! while every completable session finishes well inside its deadline —
//! the grids keep ~4x headroom on an idle machine, but a severely
//! overloaded runner could push a borderline session over its deadline
//! and flip a count.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use thinair_net::driver::drive_sim_chaos;
use thinair_net::SessionOutcome;
use thinair_netsim::{
    AckBurstSpec, CrashSpec, DelaySpec, ErasureModel, FaultPlan, IidMedium, JoinSpec,
};
use thinair_testbed::parallel_map;

use crate::report::{f6, json_escape};
use crate::run::ScenarioError;
use crate::spec::ScenarioSpec;

/// Soak artifact schema tag.
pub const SOAK_SCHEMA: &str = "thinair-soak/1";

/// The audited fate of one soaked session.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SessionVerdict {
    /// Every node completed with the identical secret.
    Agreed {
        /// Secret length in packets.
        l: usize,
        /// y-row count.
        m: usize,
    },
    /// At least one node aborted; every completer (if any) still
    /// agreed. The histogram maps abort-reason kinds to node counts.
    AbortedClean {
        /// Abort-reason kind → number of nodes reporting it.
        reasons: BTreeMap<String, u32>,
    },
    /// The invariant was violated (divergent secrets among completers).
    /// Must never occur; counted and reported loudly.
    Violation {
        /// Human-readable description.
        what: String,
    },
}

/// Classifies one session's outcomes against the safety invariant.
pub fn audit_session(outcomes: &[SessionOutcome]) -> SessionVerdict {
    let completers: Vec<&SessionOutcome> = outcomes.iter().filter(|o| o.completed()).collect();
    if let Some(first) = completers.first() {
        for other in &completers[1..] {
            if other.secret != first.secret || other.l != first.l || other.m != first.m {
                return SessionVerdict::Violation {
                    what: format!(
                        "nodes {} and {} completed with divergent outcomes",
                        first.node, other.node
                    ),
                };
            }
        }
    }
    if completers.len() == outcomes.len() {
        let first = completers.first().expect("nonempty session roster");
        return SessionVerdict::Agreed { l: first.l, m: first.m };
    }
    let mut reasons: BTreeMap<String, u32> = BTreeMap::new();
    for o in outcomes {
        if let Some(reason) = &o.abort {
            *reasons.entry(reason.kind()).or_insert(0) += 1;
        }
    }
    SessionVerdict::AbortedClean { reasons }
}

/// Aggregated soak measurements for one spec.
#[derive(Clone, Debug)]
pub struct SoakResult {
    /// The spec that produced it.
    pub spec: ScenarioSpec,
    /// Resolved x-pool size.
    pub n_packets: usize,
    /// Per-session verdicts, in session-id order.
    pub verdicts: Vec<SessionVerdict>,
    /// Sessions where every node agreed.
    pub agreed: u32,
    /// Sessions with at least one clean abort.
    pub aborted: u32,
    /// Safety-invariant violations (must be 0).
    pub violations: u32,
    /// Abort-reason kind → total node count, across sessions.
    pub abort_reasons: BTreeMap<String, u32>,
    /// Abort-reason kind → sessions affected: the session-level
    /// companion of the node-level `abort_reasons`. A session counts
    /// once per distinct kind among its aborting nodes, so the sum can
    /// exceed `aborted` when one session aborts for mixed reasons.
    pub abort_sessions: BTreeMap<String, u32>,
    /// Mean secret length over agreed sessions.
    pub mean_l: f64,
    /// Mean y-row count over agreed sessions.
    pub mean_m: f64,
    /// Total secret bits extracted across agreed sessions.
    pub secret_bits: u64,
    /// Wall-clock duration of the batch in ms (timing).
    pub wall_ms: f64,
    /// Frames put on the air (timing).
    pub frames_sent: u64,
    /// Bits put on the air (timing).
    pub bits_transmitted: u64,
    /// Total chaos-layer fault events injected (timing: includes
    /// re-drawn verdicts on retransmissions).
    pub faults_injected: u64,
}

/// Runs one spec's sessions under its fault plan and audits each.
pub fn run_soak(spec: &ScenarioSpec) -> Result<SoakResult, ScenarioError> {
    spec.validate().map_err(ScenarioError::Invalid)?;
    let cfg = spec.session_config();
    let sessions = spec.session_ids();

    let clock = crate::timing::Stopwatch::start();
    let run = drive_sim_chaos(
        IidMedium::symmetric(spec.terminals as usize, 0.0, spec.seed),
        &cfg,
        &sessions,
        spec.seed,
        spec.faults,
        spec.fault_seed(),
    )?;
    let wall_ms = clock.elapsed_ms();

    let mut verdicts = Vec::with_capacity(sessions.len());
    let (mut agreed, mut aborted, mut violations) = (0u32, 0u32, 0u32);
    let mut abort_reasons: BTreeMap<String, u32> = BTreeMap::new();
    let mut abort_sessions: BTreeMap<String, u32> = BTreeMap::new();
    let (mut sum_l, mut sum_m) = (0usize, 0usize);
    let mut secret_bits = 0u64;
    for outcomes in &run.outcomes {
        let verdict = audit_session(outcomes);
        match &verdict {
            SessionVerdict::Agreed { l, m } => {
                agreed += 1;
                sum_l += l;
                sum_m += m;
                secret_bits += (l * spec.payload_len * 8) as u64;
            }
            SessionVerdict::AbortedClean { reasons } => {
                aborted += 1;
                for (kind, count) in reasons {
                    *abort_reasons.entry(kind.clone()).or_insert(0) += count;
                    *abort_sessions.entry(kind.clone()).or_insert(0) += 1;
                }
            }
            SessionVerdict::Violation { .. } => violations += 1,
        }
        verdicts.push(verdict);
    }

    Ok(SoakResult {
        spec: spec.clone(),
        n_packets: cfg.n_packets(),
        verdicts,
        agreed,
        aborted,
        violations,
        abort_reasons,
        abort_sessions,
        mean_l: if agreed > 0 { sum_l as f64 / agreed as f64 } else { 0.0 },
        mean_m: if agreed > 0 { sum_m as f64 / agreed as f64 } else { 0.0 },
        secret_bits,
        wall_ms,
        frames_sent: run.frames,
        bits_transmitted: run.bits_transmitted(),
        faults_injected: run.faults.total(),
    })
}

/// Runs a batch of soak specs sharded across worker threads.
pub fn run_soak_specs(specs: &[ScenarioSpec]) -> Vec<Result<SoakResult, ScenarioError>> {
    parallel_map(specs, run_soak)
}

// ---------------------------------------------------------------------------
// The fault grid
// ---------------------------------------------------------------------------

fn soak_base(sessions: u32) -> ScenarioSpec {
    ScenarioSpec {
        terminals: 4,
        x_packets: 48,
        payload_len: 16,
        erasure: ErasureModel::Iid { p: 0.4 },
        sessions,
        // Short deadline: crashed sessions burn exactly this long, and
        // all of a batch's crashed sessions burn it concurrently.
        deadline_ms: 4_000,
        ..ScenarioSpec::default()
    }
}

/// The grid's cells, labelled; the labels drive the smoke subset. The
/// third element scales the cell's session count (the overload cell
/// runs a multiple of the grid's base concurrency).
fn soak_cells() -> Vec<(&'static str, FaultPlan, u32)> {
    let one = |label, faults| (label, faults, 1);
    vec![
        one("clean baseline", FaultPlan::none()),
        one(
            "reorder + duplicate",
            FaultPlan { reorder: 0.25, duplicate: 0.25, ..FaultPlan::none() },
        ),
        one(
            "delay jitter + duplicate",
            FaultPlan {
                delay: Some(DelaySpec { prob: 0.3, max_frames: 6 }),
                duplicate: 0.15,
                ..FaultPlan::none()
            },
        ),
        one("bit corruption", FaultPlan { corrupt: 0.02, ..FaultPlan::none() }),
        one("frame drops", FaultPlan { drop: 0.03, ..FaultPlan::none() }),
        one("burst partitions", FaultPlan { partition: 0.04, ..FaultPlan::none() }),
        one(
            "crash at report",
            FaultPlan {
                crash: Some(CrashSpec { prob: 0.35, node: None, after_seq: 1 }),
                ..FaultPlan::none()
            },
        ),
        one(
            "crash after done",
            FaultPlan {
                crash: Some(CrashSpec { prob: 0.35, node: None, after_seq: 2 }),
                ..FaultPlan::none()
            },
        ),
        one(
            "late join",
            FaultPlan {
                late_join: Some(JoinSpec { prob: 0.5, node: None, after_frames: 10 }),
                ..FaultPlan::none()
            },
        ),
        one(
            "kitchen sink",
            FaultPlan {
                reorder: 0.15,
                duplicate: 0.15,
                corrupt: 0.01,
                delay: Some(DelaySpec { prob: 0.2, max_frames: 4 }),
                late_join: Some(JoinSpec { prob: 0.3, node: None, after_frames: 12 }),
                ..FaultPlan::none()
            },
        ),
        // ACK-loss burst: data lands, receipts die — the targeted attack
        // on the adaptive RTO / backoff re-arm path (Karn's rule bars
        // RTT samples from the retransmissions the burst forces).
        one(
            "ack-loss burst",
            FaultPlan { ack_burst: Some(AckBurstSpec { prob: 0.5, len: 8 }), ..FaultPlan::none() },
        ),
        // Overload surge: no injected faults, 3× the grid's concurrency
        // — the soak-side companion of the serve bench's overload wave,
        // exercising the per-node flow budget and admission pacing
        // under contention. Audited by the same safety invariant.
        ("overload surge", FaultPlan::none(), 3),
    ]
}

/// The soak fault grid: reorder × duplicate × corrupt × drop × jitter
/// × partition × crash × late-join × ACK-loss burst, `sessions`
/// concurrent sessions per cell (plus a clean-baseline cell and a 3×
/// fault-free overload-surge cell) — 12 cells.
pub fn soak_specs(seed: u64, sessions: u32) -> Vec<ScenarioSpec> {
    soak_specs_for(seed, sessions, |_| true)
}

/// The CI smoke subset: one cell per fault family, selected by label
/// (per-cell seeds stay identical to the full grid's).
pub fn soak_smoke_specs(seed: u64) -> Vec<ScenarioSpec> {
    const SMOKE: [&str; 6] = [
        "clean baseline",
        "reorder + duplicate",
        "bit corruption",
        "crash at report",
        "kitchen sink",
        "ack-loss burst",
    ];
    soak_specs_for(seed, 8, |label| SMOKE.contains(&label))
}

fn soak_specs_for(
    seed: u64,
    sessions: u32,
    select: impl Fn(&'static str) -> bool,
) -> Vec<ScenarioSpec> {
    let base = soak_base(sessions);
    soak_cells()
        .into_iter()
        .enumerate()
        .filter(|(_, (label, _, _))| select(label))
        .map(|(i, (_, faults, mult))| {
            let tag: String = if faults.is_none() { "clean".into() } else { faults.tag() };
            // Multiplied cells get a distinct name (the fault tag alone
            // would collide with the single-concurrency cell's).
            let name = if mult > 1 { format!("soak_{tag}_x{mult}") } else { format!("soak_{tag}") };
            ScenarioSpec {
                name,
                faults,
                sessions: base.sessions * mult,
                seed: thinair_netsim::splitmix64(
                    seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                ),
                ..base.clone()
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// The artifact
// ---------------------------------------------------------------------------

fn result_json(r: &SoakResult, include_timing: bool) -> String {
    let spec = &r.spec;
    let fault_params = spec.faults.params().iter().map(|p| f6(*p)).collect::<Vec<_>>().join(", ");
    let reason_map = |m: &BTreeMap<String, u32>| {
        m.iter().map(|(k, v)| format!("\"{}\": {v}", json_escape(k))).collect::<Vec<_>>().join(", ")
    };
    let reasons = reason_map(&r.abort_reasons);
    let reason_sessions = reason_map(&r.abort_sessions);
    let mut fields = vec![
        format!("\"name\": \"{}\"", json_escape(&spec.name)),
        format!("\"terminals\": {}", spec.terminals),
        format!("\"x_packets\": {}", spec.x_packets),
        format!("\"payload_len\": {}", spec.payload_len),
        format!(
            "\"erasure\": {{\"kind\": \"{}\", \"mean\": {}}}",
            spec.erasure.kind(),
            f6(spec.effective_p())
        ),
        format!(
            "\"faults\": {{\"tag\": \"{}\", \"params\": [{}]}}",
            json_escape(&spec.faults.tag()),
            fault_params
        ),
        format!("\"sessions\": {}", spec.sessions),
        format!("\"seed\": {}", spec.seed),
        format!("\"deadline_ms\": {}", spec.deadline_ms),
        format!("\"n_packets\": {}", r.n_packets),
        format!("\"agreed\": {}", r.agreed),
        format!("\"aborted\": {}", r.aborted),
        format!("\"violations\": {}", r.violations),
        format!("\"abort_reasons\": {{{reasons}}}"),
        format!("\"abort_sessions\": {{{reason_sessions}}}"),
        format!("\"mean_l\": {}", f6(r.mean_l)),
        format!("\"mean_m\": {}", f6(r.mean_m)),
        format!("\"secret_bits\": {}", r.secret_bits),
    ];
    if include_timing {
        fields.push(format!("\"frames_sent\": {}", r.frames_sent));
        fields.push(format!("\"bits_transmitted\": {}", r.bits_transmitted));
        fields.push(format!("\"faults_injected\": {}", r.faults_injected));
        fields.push(format!("\"wall_ms\": {:.1}", r.wall_ms));
    }
    format!("    {{{}}}", fields.join(", "))
}

/// Renders the soak artifact. With `include_timing = false` the output
/// is a pure function of the specs (the determinism contract pinned by
/// `tests/soak_determinism.rs`).
pub fn render_soak_json(results: &[SoakResult], include_timing: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{SOAK_SCHEMA}\",\n"));
    out.push_str("  \"results\": [\n");
    let rows: Vec<String> = results.iter().map(|r| result_json(r, include_timing)).collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

/// Writes the soak artifact to `path` (timing fields included).
pub fn write_soak_json(path: &Path, results: &[SoakResult]) -> io::Result<()> {
    std::fs::write(path, render_soak_json(results, true))
}

/// A fixed-width console summary, one line per soak cell.
pub fn soak_summary_table(results: &[SoakResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<34} {:>8} {:>7} {:>8} {:>10} {:>7} {:>7}\n",
        "soak cell", "sessions", "agreed", "aborted", "violations", "mean_l", "faults"
    ));
    for r in results {
        out.push_str(&format!(
            "{:<34} {:>8} {:>7} {:>8} {:>10} {:>7.1} {:>7}\n",
            r.spec.name,
            r.spec.sessions,
            r.agreed,
            r.aborted,
            r.violations,
            r.mean_l,
            r.faults_injected,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use thinair_net::AbortReason;

    fn outcome(node: u8, l: usize, abort: Option<AbortReason>) -> SessionOutcome {
        let secret = (0..l).map(|i| vec![thinair_gf::Gf256(i as u8); 4]).collect();
        SessionOutcome { session: 1, node, l, m: l + 1, n_packets: 10, secret, abort, trace: None }
    }

    #[test]
    fn audit_classifies_agreement() {
        let outs = vec![outcome(0, 2, None), outcome(1, 2, None), outcome(2, 2, None)];
        assert_eq!(audit_session(&outs), SessionVerdict::Agreed { l: 2, m: 3 });
    }

    #[test]
    fn audit_classifies_clean_aborts() {
        let reason = AbortReason::Deadline { phase: "z fountain" };
        let outs = vec![
            outcome(0, 2, None),
            outcome(1, 0, Some(reason.clone())),
            outcome(2, 0, Some(reason)),
        ];
        match audit_session(&outs) {
            SessionVerdict::AbortedClean { reasons } => {
                assert_eq!(reasons.get("deadline:z fountain"), Some(&2));
            }
            other => panic!("expected clean abort, got {other:?}"),
        }
    }

    #[test]
    fn audit_flags_divergent_completers() {
        let mut diverging = outcome(1, 2, None);
        diverging.secret[0] = vec![thinair_gf::Gf256(9); 4];
        let outs = vec![outcome(0, 2, None), diverging];
        assert!(matches!(audit_session(&outs), SessionVerdict::Violation { .. }));
    }

    #[test]
    fn clean_soak_cell_agrees_everywhere() {
        let spec = ScenarioSpec { sessions: 2, ..soak_base(2) };
        let r = run_soak(&spec).expect("soak completes");
        assert_eq!(r.agreed, 2);
        assert_eq!(r.aborted, 0);
        assert_eq!(r.violations, 0);
        assert!(r.mean_l > 0.0);
        assert_eq!(r.faults_injected, 0);
    }

    #[test]
    fn soak_grid_covers_every_fault_family() {
        let specs = soak_specs(1, 60);
        let total: u32 = specs.iter().map(|s| s.sessions).sum();
        assert!(total >= 500, "the acceptance floor is 500 sessions, got {total}");
        assert!(specs.iter().any(|s| s.faults.is_none()));
        assert!(specs.iter().any(|s| s.faults.reorder > 0.0));
        assert!(specs.iter().any(|s| s.faults.duplicate > 0.0));
        assert!(specs.iter().any(|s| s.faults.corrupt > 0.0));
        assert!(specs.iter().any(|s| s.faults.delay.is_some()));
        assert!(specs.iter().any(|s| s.faults.partition > 0.0));
        assert!(specs.iter().any(|s| s.faults.crash.is_some()));
        assert!(specs.iter().any(|s| s.faults.late_join.is_some()));
        assert!(specs.iter().any(|s| s.faults.ack_burst.is_some()));
        // The overload-surge cell runs at a multiple of the base
        // concurrency, under a name distinct from the clean baseline's.
        assert!(specs.iter().any(|s| s.faults.is_none() && s.sessions == 180));
        for s in &specs {
            assert_eq!(s.validate(), Ok(()), "{}", s.name);
        }
        let names: std::collections::BTreeSet<_> = specs.iter().map(|s| &s.name).collect();
        assert_eq!(names.len(), specs.len(), "soak cell names must be unique");
    }

    #[test]
    fn smoke_subset_is_small_but_representative() {
        let specs = soak_smoke_specs(1);
        assert!(specs.len() >= 4 && specs.len() <= 6, "got {}", specs.len());
        assert!(specs.iter().any(|s| s.faults.is_none()));
        assert!(specs.iter().any(|s| s.faults.crash.is_some()));
        assert!(specs.iter().any(|s| s.faults.late_join.is_some()));
        assert!(specs.iter().any(|s| s.faults.ack_burst.is_some()));
    }
}
