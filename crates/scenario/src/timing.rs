//! The **one sanctioned wall-clock seam** for determinism-critical
//! scenario code.
//!
//! `thinair-lint`'s `determinism` rule bans `Instant::now()` outright in
//! `scenario::{explore,soak}` (and the chaos/fault modules): a schedule
//! enumeration, verdict, or fingerprint must be a pure function of
//! seeds and specs. But the *reports* those modules emit carry
//! timing-class fields (`wall_ms`) that genuinely need the wall clock.
//! Routing those reads through this module keeps the ban absolute where
//! it matters — any `Instant::now` token appearing in a determinism
//! file is a bug, full stop — while timing stays greppable in exactly
//! one place.
//!
//! A [`Stopwatch`] also hands out its base [`Instant`] so
//! `rt::block_on_virtual` callers can seed the virtual clock without a
//! second wall read: every run in an explore batch shares the same
//! base, which removes even the *base-instant* variation between runs.

use std::time::Instant;

/// A wall-clock stopwatch for timing-class report fields.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    base: Instant,
}

impl Stopwatch {
    /// Reads the wall clock once and starts the stopwatch.
    pub fn start() -> Stopwatch {
        Stopwatch { base: Instant::now() }
    }

    /// The instant the stopwatch started — the virtual-clock seed for
    /// `rt::block_on_virtual` (virtual time never reads the wall clock
    /// again after this base).
    pub fn base(&self) -> Instant {
        self.base
    }

    /// Milliseconds elapsed since [`Stopwatch::start`], for `wall_ms`
    /// report fields only. Never feed this into verdicts, fingerprints,
    /// schedules, or wire traffic.
    pub fn elapsed_ms(&self) -> f64 {
        self.base.elapsed().as_secs_f64() * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_monotone_and_base_stable() {
        let sw = Stopwatch::start();
        let base = sw.base();
        let a = sw.elapsed_ms();
        let b = sw.elapsed_ms();
        assert!(a >= 0.0);
        assert!(b >= a);
        assert_eq!(sw.base(), base, "base never moves");
    }
}
