//! Prints the golden scenario's exact measurements (used to pin
//! `tests/golden.rs`; rerun after intentional protocol changes). The
//! spec comes from [`thinair_scenario::golden_spec`], the same function
//! the test uses, so the probe can never record a different config.

use thinair_scenario::{golden_spec, run_scenario};

fn main() {
    let r = run_scenario(&golden_spec()).expect("golden scenario runs");
    for s in &r.per_session {
        println!("session {} l={} m={} rel={:.6}", s.session, s.l, s.m, s.eve_reliability);
    }
    println!(
        "secret_bits={} measured={:.6} predicted={:.6} ratio={:.4}",
        r.secret_bits,
        r.measured_efficiency(),
        r.prediction.group_efficiency,
        r.efficiency_ratio()
    );
}
