//! Golden-output pins for the coding hot path.
//!
//! These hashes were recorded from the scalar (pre-kernel) implementation
//! and must never change: the byte-plane kernels are pure refactors of the
//! same field arithmetic, so every derived secret, y-payload and coded
//! share stays byte-identical. If a kernel change breaks one of these, it
//! changed the protocol's outputs, not just its speed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use thinair_core::construct::{build_plan, PlanParams};
use thinair_core::estimate::Estimator;
use thinair_core::eve::EveLedger;
use thinair_core::phase1::{run_phase1, Phase1Config};
use thinair_core::phase2::run_phase2;
use thinair_gf::{Gf256, Matrix};
use thinair_netsim::{IidMedium, TxStats};

/// FNV-1a over a byte stream (stable, dependency-free fingerprint).
fn fnv64(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn payloads_digest(payloads: &[Vec<Gf256>]) -> u64 {
    fnv64(payloads.iter().flat_map(|p| p.iter().map(|s| s.value())))
}

/// One deterministic group round: phase 1 + construction + phase 2 over
/// an iid medium, returning (y digest, secrets digest, l).
fn group_round(seed: u64) -> (u64, u64, usize) {
    let n_terminals = 4;
    let n_packets = 30;
    let mut medium = IidMedium::symmetric(n_terminals + 1, 0.4, seed);
    let mut stats = TxStats::new(n_terminals + 1);
    let mut eve = EveLedger::new(n_packets);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
    let cfg = Phase1Config {
        x_per_terminal: {
            let mut v = vec![0; n_terminals];
            v[0] = n_packets;
            v
        },
        payload_len: 16,
        max_attempts: 100_000,
    };
    let pool =
        run_phase1(&mut medium, &mut stats, &mut eve, &cfg, n_terminals, 0, &mut rng).unwrap();
    let est = Estimator::Oracle { eve_known: eve.received().clone() };
    let plan = build_plan(
        &pool.known,
        0,
        n_packets,
        &est,
        &mut rng,
        PlanParams { max_rows: 64, ..PlanParams::exact() },
    )
    .unwrap();
    let out = run_phase2(&mut medium, &mut stats, &mut eve, &plan, &pool, 100_000).unwrap();
    assert!(out.all_agree());
    let y = payloads_digest(&out.y_payloads);
    let s = fnv64(
        out.secrets.iter().flat_map(|per_t| per_t.iter().flat_map(|p| p.iter().map(|x| x.value()))),
    );
    (y, s, plan.l)
}

#[test]
fn group_round_outputs_are_pinned() {
    // Recorded from the pre-kernel scalar implementation.
    assert_eq!(group_round(42), (0xF4A4_0180_D76B_CA41, 0xCD8B_74B5_3FE2_2B65, 5));
}

#[test]
fn reed_solomon_outputs_are_pinned() {
    let mut rng = StdRng::seed_from_u64(3);
    let rs = thinair_mds::ReedSolomon::new(5, 9).unwrap();
    let data: Vec<Vec<Gf256>> =
        (0..5).map(|_| (0..33).map(|_| Gf256(rng.gen())).collect()).collect();
    let coded = rs.encode(&data);
    assert_eq!(payloads_digest(&coded), 0x9C5F_3FDD_432B_6A9C);
    let shares: Vec<(usize, Vec<Gf256>)> = (4..9).map(|i| (i, coded[i].clone())).collect();
    assert_eq!(rs.decode(&shares).unwrap(), data);
}

#[test]
fn matrix_payload_ops_are_pinned() {
    let mut rng = StdRng::seed_from_u64(11);
    let a = Matrix::random(6, 6, &mut rng);
    let payloads: Vec<Vec<Gf256>> =
        (0..6).map(|_| (0..21).map(|_| Gf256(rng.gen())).collect()).collect();
    let out = a.mul_payloads(&payloads);
    assert_eq!(payloads_digest(&out), 0x4998_5DE0_2B1F_7620);
    if a.rank() == 6 {
        assert_eq!(a.solve_payloads(&out).unwrap(), payloads);
    }
}
