//! Targeted tests for the phase-2 fountain reconciliation under adverse
//! channels, and for failure injection (the guides' drop/corrupt knobs)
//! through the whole protocol stack.

use rand::rngs::StdRng;
use rand::SeedableRng;
use thinair_core::round::{run_group_round, RoundConfig, XSchedule};
use thinair_core::{Estimator, ProtocolError};
use thinair_netsim::{FaultyMedium, IidMedium};

fn oracle_cfg(n: usize) -> RoundConfig {
    RoundConfig {
        schedule: XSchedule::CoordinatorOnly(n),
        payload_len: 16,
        estimator: Estimator::Oracle { eve_known: Default::default() },
        ..RoundConfig::default()
    }
}

#[test]
fn fountain_survives_heavy_loss() {
    // 70% loss on every link: reconciliation must still converge (the
    // fountain just sends more combos) and all terminals must agree.
    let mut rng = StdRng::seed_from_u64(1);
    let medium = IidMedium::symmetric(5, 0.7, 3);
    let out = run_group_round(medium, 4, 0, &oracle_cfg(80), &mut rng).unwrap();
    if out.l > 0 {
        assert!(out.all_terminals_agree());
        assert_eq!(out.reliability(), 1.0);
    }
}

#[test]
fn fountain_under_injected_faults() {
    // Extra 30% drop + 10% corruption (FCS failures) injected on top of a
    // clean channel: the protocol must still complete and agree.
    let mut rng = StdRng::seed_from_u64(2);
    let inner = IidMedium::symmetric(5, 0.2, 7);
    let medium = FaultyMedium::new(inner, 0.3, 0.1, 11);
    let out = run_group_round(medium, 4, 0, &oracle_cfg(60), &mut rng).unwrap();
    if out.l > 0 {
        assert!(out.all_terminals_agree());
        assert_eq!(out.reliability(), 1.0, "oracle estimator stays airtight under faults");
    }
}

#[test]
fn asymmetric_channels_still_converge() {
    // One terminal with a terrible downlink: the fountain endgame is
    // driven by it, but the round must finish and agree.
    let n = 4;
    let mut m = vec![vec![0.3; n + 1]; n + 1];
    for row in m.iter_mut() {
        row[2] = 0.85; // terminal 2 hears almost nothing
    }
    let medium = IidMedium::from_matrix(m, 13);
    let mut rng = StdRng::seed_from_u64(3);
    let out = run_group_round(medium, n, 0, &oracle_cfg(60), &mut rng).unwrap();
    if out.l > 0 {
        assert!(out.all_terminals_agree());
    }
}

#[test]
fn attempt_budget_exhaustion_reports_cleanly() {
    // A terminal that can never receive makes phase 1's reliable reports
    // impossible; the round must fail with a Reliable error, not hang or
    // panic.
    let n = 3;
    let mut m = vec![vec![0.0; n + 1]; n + 1];
    for row in m.iter_mut() {
        row[1] = 1.0; // nobody can reach terminal 1
    }
    let medium = IidMedium::from_matrix(m, 17);
    let mut rng = StdRng::seed_from_u64(4);
    let cfg = RoundConfig { max_attempts: 50, ..oracle_cfg(20) };
    let err = run_group_round(medium, n, 0, &cfg, &mut rng).unwrap_err();
    assert!(matches!(err, ProtocolError::Reliable(_)), "{err:?}");
}

#[test]
fn payload_length_is_respected_end_to_end() {
    for payload_len in [1usize, 7, 100, 255] {
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = RoundConfig { payload_len, ..oracle_cfg(30) };
        let medium = IidMedium::symmetric(4, 0.5, 23);
        let out = run_group_round(medium, 3, 0, &cfg, &mut rng).unwrap();
        for pkt in out.secret() {
            assert_eq!(pkt.len(), payload_len);
        }
        assert_eq!(out.secret_bits(), (out.l * payload_len * 8) as u64);
    }
}
