//! Property-based tests for the wire format and the auth layer: every
//! message round-trips, every truncation fails cleanly, every forged tag
//! is rejected.

use proptest::prelude::*;
use thinair_core::auth::Authenticator;
use thinair_core::wire::{bitmap_from_received, received_from_bitmap, Message, SparseRow};

fn arb_message() -> impl Strategy<Value = Message> {
    let x = (any::<u16>(), any::<u8>(), proptest::collection::vec(any::<u8>(), 0..200))
        .prop_map(|(id, owner, payload)| Message::XPacket { id, owner, payload });
    let report =
        (any::<u8>(), 0u16..512).prop_map(|(terminal, n_packets)| Message::ReceptionReport {
            terminal,
            n_packets,
            bitmap: vec![0xAA; (n_packets as usize).div_ceil(8)],
        });
    let y = proptest::collection::vec(
        (proptest::collection::vec(any::<u16>(), 0..12), any::<u8>()),
        0..8,
    )
    .prop_map(|rows| Message::YAnnounce {
        rows: rows
            .into_iter()
            .map(|(support, c)| {
                let coeffs = vec![c; support.len()];
                SparseRow { support, coeffs }
            })
            .collect(),
    });
    let z = (
        any::<u16>(),
        proptest::collection::vec(any::<u8>(), 0..32),
        proptest::collection::vec(any::<u8>(), 0..150),
    )
        .prop_map(|(index, coeffs, payload)| Message::ZPacket { index, coeffs, payload });
    let s = (0usize..6, 0usize..10)
        .prop_map(|(rows, width)| Message::SAnnounce { rows: vec![vec![7u8; width]; rows] });
    let pad = (any::<u8>(), 0usize..4, 0usize..60).prop_map(|(terminal, n, w)| {
        Message::PadDelivery { terminal, payloads: vec![vec![3u8; w]; n] }
    });
    let plan = (any::<u64>(), any::<u16>(), any::<u16>())
        .prop_map(|(seed, m, l)| Message::PlanAnnounce { seed, m, l });
    let auth = (proptest::collection::vec(any::<u8>(), 0..100), any::<u8>())
        .prop_map(|(inner, t)| Message::Authenticated { inner, tag: [t; 32] });
    prop_oneof![x, report, y, z, s, pad, plan, auth]
}

proptest! {
    #[test]
    fn every_message_round_trips(msg in arb_message()) {
        let enc = msg.encode();
        prop_assert_eq!(msg.bits(), (enc.len() * 8) as u64);
        let dec = Message::decode(&enc).unwrap();
        prop_assert_eq!(dec, msg);
    }

    #[test]
    fn truncation_always_fails_cleanly(msg in arb_message(), cut_frac in 0.0f64..1.0) {
        let enc = msg.encode();
        let cut = ((enc.len() as f64) * cut_frac) as usize;
        if cut < enc.len() {
            // Must return an error, never panic; a shorter prefix that
            // happens to parse as a *different* valid message is allowed
            // only if it consumed everything — our decoder reads exact
            // field counts, so a strict prefix of a message either errors
            // or ends precisely at a field boundary of a smaller message.
            let _ = Message::decode(&enc[..cut]);
        }
    }

    #[test]
    fn authenticated_round_trip_and_forgery(
        msg in arb_message(),
        key in proptest::collection::vec(any::<u8>(), 1..64),
        evil_key in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        let auth = Authenticator::new(&key);
        let sealed = auth.seal(&msg);
        prop_assert_eq!(auth.open(&sealed, 1).unwrap(), msg.clone());
        if evil_key != key {
            let evil = Authenticator::new(&evil_key);
            let forged = evil.seal(&msg);
            prop_assert!(auth.open(&forged, 1).is_err());
        }
    }

    #[test]
    fn bitmap_round_trip(n in 0usize..300, seed in any::<u64>()) {
        use rand::{Rng, SeedableRng, rngs::StdRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let received: Vec<usize> = (0..n).filter(|_| rng.gen_bool(0.4)).collect();
        let bm = bitmap_from_received(n, received.iter().copied());
        prop_assert_eq!(received_from_bitmap(n, &bm), received);
    }

    /// Arbitrary garbage never panics the decoder — the UDP codec in
    /// `thinair-net` feeds it raw datagram payloads.
    #[test]
    fn garbage_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Message::decode(&data);
    }

    /// Single-byte mutations of a valid encoding either fail to parse
    /// or parse to some message — never panic. (The wire format has no
    /// checksum of its own; the net-layer frame adds CRC-32.)
    #[test]
    fn mutated_encodings_never_panic(
        msg in arb_message(),
        pos_frac in 0.0f64..1.0,
        xor in 1u8..=255,
    ) {
        let mut enc = msg.encode().to_vec();
        if !enc.is_empty() {
            let pos = (((enc.len() - 1) as f64) * pos_frac) as usize;
            enc[pos] ^= xor;
            let _ = Message::decode(&enc);
        }
    }
}
