//! Ground-truth eavesdropper accounting.
//!
//! In the paper's experiments Eve is a real router whose receptions are
//! logged and compared against the generated secret; *reliability* `r`
//! means Eve guesses each secret bit with probability `2^{-r}`. In the
//! simulator we can compute this exactly: everything Eve ever learns is
//! linear in the x-packet pool —
//!
//! * the x-packets her channel delivered (unit coefficient rows),
//! * every reliably-broadcast payload, which the paper conservatively
//!   assumes she receives: z-packet contents (`C·W` rows) and, in the
//!   unicast baseline, the padded secret deliveries,
//!
//! so her knowledge is a subspace of `GF(256)^N` and the secret's residual
//! uncertainty is a rank difference. [`EveLedger`] maintains the subspace
//! incrementally; [`EveLedger::reliability`] returns `r` = (number of
//! secret packets still uniform given Eve's view) / L ∈ [0, 1] — 1 is
//! perfect secrecy, 0 means Eve can reconstruct everything.
//!
//! A multi-antenna Eve (§6's "biggest challenge") is simply a ledger fed
//! by several receiver positions: the union of their deliveries.

use std::collections::BTreeSet;

use thinair_gf::{Gf256, Matrix, RowEchelon};

/// Eve's accumulated knowledge about one round's x-pool.
#[derive(Clone, Debug)]
pub struct EveLedger {
    n_packets: usize,
    received: BTreeSet<usize>,
    basis: RowEchelon,
}

impl EveLedger {
    /// An empty ledger over an `n_packets`-wide pool.
    pub fn new(n_packets: usize) -> Self {
        EveLedger { n_packets, received: BTreeSet::new(), basis: RowEchelon::new(n_packets) }
    }

    /// Width of the pool.
    pub fn n_packets(&self) -> usize {
        self.n_packets
    }

    /// Records that Eve received x-packet `j` (any antenna).
    pub fn note_x(&mut self, j: usize) {
        assert!(j < self.n_packets, "packet index out of range");
        if self.received.insert(j) {
            let mut row = vec![Gf256::ZERO; self.n_packets];
            row[j] = Gf256::ONE;
            self.basis.insert(&row);
        }
    }

    /// Records a published linear combination (dense coefficients over the
    /// pool) whose *contents* Eve knows — e.g. a z-packet.
    pub fn note_public_row(&mut self, coeffs: &[Gf256]) {
        self.basis.insert(coeffs);
    }

    /// Convenience: record every row of a matrix as public knowledge.
    pub fn note_public_matrix(&mut self, m: &Matrix) {
        self.basis.insert_matrix(m);
    }

    /// The x-packets Eve received directly.
    pub fn received(&self) -> &BTreeSet<usize> {
        &self.received
    }

    /// Dimension of Eve's knowledge subspace.
    pub fn knowledge_rank(&self) -> usize {
        self.basis.rank()
    }

    /// How many of the secret's packets remain jointly uniform given
    /// Eve's view: `rank([K; S]) − rank(K)`.
    pub fn secret_dims(&self, secret_rows: &Matrix) -> usize {
        self.basis.rank_increase(secret_rows)
    }

    /// The paper's reliability metric for a secret of `l` packets
    /// described by `secret_rows` (`l×N`): 1.0 = Eve knows nothing,
    /// 0.0 = Eve can reconstruct the whole secret. Returns 1.0 for an
    /// empty secret (nothing to leak).
    pub fn reliability(&self, secret_rows: &Matrix) -> f64 {
        let l = secret_rows.rows();
        if l == 0 {
            return 1.0;
        }
        self.secret_dims(secret_rows) as f64 / l as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_matrix(n: usize, idxs: &[usize]) -> Matrix {
        let mut m = Matrix::zero(0, n);
        for &i in idxs {
            let mut row = vec![Gf256::ZERO; n];
            row[i] = Gf256::ONE;
            m.push_row(&row);
        }
        m
    }

    #[test]
    fn fresh_ledger_knows_nothing() {
        let e = EveLedger::new(8);
        assert_eq!(e.knowledge_rank(), 0);
        let secret = unit_matrix(8, &[0, 1]);
        assert_eq!(e.reliability(&secret), 1.0);
        assert_eq!(e.secret_dims(&secret), 2);
    }

    #[test]
    fn received_packets_leak_their_dimension() {
        let mut e = EveLedger::new(8);
        e.note_x(0);
        e.note_x(3);
        e.note_x(3); // duplicate is idempotent
        assert_eq!(e.knowledge_rank(), 2);
        assert_eq!(e.received().len(), 2);
        // Secret = packets {0, 5}: Eve knows packet 0 → half the secret.
        let secret = unit_matrix(8, &[0, 5]);
        assert_eq!(e.secret_dims(&secret), 1);
        assert!((e.reliability(&secret) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn public_rows_combine_with_received_packets() {
        let mut e = EveLedger::new(4);
        e.note_x(0);
        // Public row x0 + x1: combined with x0, Eve derives x1.
        let mut row = vec![Gf256::ZERO; 4];
        row[0] = Gf256::ONE;
        row[1] = Gf256::ONE;
        e.note_public_row(&row);
        let secret = unit_matrix(4, &[1]);
        assert_eq!(e.reliability(&secret), 0.0);
        // x2 remains unknown.
        let secret2 = unit_matrix(4, &[2]);
        assert_eq!(e.reliability(&secret2), 1.0);
    }

    #[test]
    fn empty_secret_is_trivially_reliable() {
        let e = EveLedger::new(4);
        assert_eq!(e.reliability(&Matrix::zero(0, 4)), 1.0);
    }

    #[test]
    fn partial_reliability_matches_paper_semantics() {
        // The paper's example: r = 0.2 means Eve can guess each secret bit
        // with probability 2^{-0.2}. In rank terms: 1/5 of the secret's
        // packets stay uniform.
        let mut e = EveLedger::new(10);
        for j in 0..8 {
            e.note_x(j);
        }
        let secret = unit_matrix(10, &[0, 1, 2, 3, 8]); // 4 of 5 known
        assert!((e.reliability(&secret) - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_packet_rejected() {
        let mut e = EveLedger::new(2);
        e.note_x(5);
    }

    #[test]
    fn multi_antenna_union_semantics() {
        // Two antennas = two delivery sets, one ledger.
        let mut e = EveLedger::new(6);
        for j in [0usize, 1] {
            e.note_x(j); // antenna 1
        }
        for j in [1usize, 2, 3] {
            e.note_x(j); // antenna 2
        }
        assert_eq!(e.received().len(), 4);
        let secret = unit_matrix(6, &[3, 4]);
        assert!((e.reliability(&secret) - 0.5).abs() < 1e-12);
    }
}
