//! Lower-bounding what Eve is missing (paper §3.3).
//!
//! The terminals cannot observe Eve's receptions, yet Alice must decide how
//! many secret packets (`M_i`) each pairwise relationship can support. The
//! paper proposes estimating Eve's erasures *empirically from the
//! terminals' own reports*: "we can pretend that each terminal `T_j` is
//! Eve" — and, against stronger adversaries, that each *set* of `k`
//! terminals jointly is Eve. This module implements those estimators plus
//! two more:
//!
//! * [`Estimator::LeaveOneOut`] — the paper's main §3.3 idea. Candidate
//!   Eves are the individual terminals.
//! * [`Estimator::KCollusion`] — "to secure against an adversary that has
//!   as many antennas as k terminals, we can pretend that each set of k
//!   terminals together are Eve".
//! * [`Estimator::FixedFraction`] — trust the artificial-interference
//!   guarantee: Eve misses at least a fraction δ of any packet set,
//!   independently of position ("especially crafted interference that
//!   causes Eve to miss some minimum fraction of the packets").
//! * [`Estimator::Oracle`] — ground truth, for the Figure 1 "favorable
//!   assumptions" runs and for tests.
//!
//! Each estimator is exposed to the construction as a set of [`EveView`]s:
//! per-packet *miss capacities* that the y-row builder must respect via a
//! Hall-condition/matching argument (see `crate::construct`). A view may
//! *concede* rows whose support lies entirely inside the candidate's known
//! set: an eavesdropper standing exactly at a member terminal's position
//! can decode whatever that member decodes, and no group-secret protocol
//! can defend against an adversary who hears everything a legitimate
//! member hears. (This is the group-secret generalization of the paper's
//! rule of excluding the pair `{Alice, T_i}` from the candidate set.)

use std::collections::BTreeSet;

/// Conservatism knobs shared by the report-driven estimators.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Tuning {
    /// Multiplier applied to the raw estimate (≤ 1.0 is conservative).
    pub scale: f64,
    /// Packets subtracted from the scaled estimate (absolute safety
    /// margin; also hardens the construction against the ~2⁻⁸ per-minor
    /// failure probability of random GF(2⁸) coefficients).
    pub slack: usize,
}

impl Default for Tuning {
    fn default() -> Self {
        Tuning { scale: 1.0, slack: 0 }
    }
}

impl Tuning {
    fn apply(&self, raw: usize) -> usize {
        ((raw as f64 * self.scale).floor() as usize).saturating_sub(self.slack)
    }
}

/// One hypothesis about Eve, expressed as packet miss-capacities for the
/// Hall/matching check.
#[derive(Clone, Debug)]
pub struct EveView {
    /// `miss_capacity[j]` — how many "units" of secrecy packet `j` can
    /// supply under this hypothesis. 0 means Eve is assumed to know packet
    /// `j`.
    pub miss_capacity: Vec<u32>,
    /// Units of capacity each y-row must absorb (1 for candidate-set
    /// views; larger for fractional views).
    pub row_demand: u32,
    /// When `Some(k)`, rows whose support is contained in `k` are exempt
    /// from this view (the candidate is a legitimate decoder of the row).
    pub concede: Option<BTreeSet<usize>>,
}

/// How Alice bounds the number of packets Eve missed.
#[derive(Clone, Debug)]
pub enum Estimator {
    /// Pretend every single terminal is Eve (paper §3.3).
    LeaveOneOut(Tuning),
    /// Pretend every k-subset of terminals jointly is Eve (multi-antenna
    /// adversary, paper §3.3 last paragraph).
    KCollusion {
        /// Number of colluding terminal positions.
        k: usize,
        /// Conservatism knobs.
        tuning: Tuning,
    },
    /// Assume interference guarantees Eve misses ≥ `fraction` of any
    /// packet set.
    FixedFraction {
        /// Guaranteed missing fraction, in `(0, 1]`.
        fraction: f64,
    },
    /// Ground truth: the actual set of x-packets Eve received.
    Oracle {
        /// Eve's true received set.
        eve_known: BTreeSet<usize>,
    },
    /// Externally supplied candidate Eve reception sets — e.g. the
    /// *jamming-aware* estimator built by `thinair-testbed`: the terminals
    /// operate the interferers, so for every position Eve could occupy
    /// (≥ the minimum distance from each terminal, paper §4) they can
    /// compute exactly which packets the rotation schedule denied her.
    /// Unlike terminal-report candidates these are not group members, so
    /// no row is conceded: a row fully inside a candidate's possible
    /// knowledge is simply rejected.
    Custom {
        /// Label for reports.
        label: String,
        /// One hypothetical Eve reception set per candidate position.
        candidates: Vec<BTreeSet<usize>>,
        /// Conservatism knobs.
        tuning: Tuning,
    },
}

/// Granularity used to express fractional capacities as integers.
pub const FRACTION_SCALE: u32 = 16;

impl Estimator {
    /// The conservatism knobs this estimator was configured with
    /// (estimators without knobs report the neutral tuning).
    pub fn tuning(&self) -> Tuning {
        match self {
            Estimator::LeaveOneOut(t) => *t,
            Estimator::KCollusion { tuning, .. } => *tuning,
            Estimator::FixedFraction { .. } | Estimator::Oracle { .. } => Tuning::default(),
            Estimator::Custom { tuning, .. } => *tuning,
        }
    }

    /// A short human-readable name for reports.
    pub fn name(&self) -> String {
        match self {
            Estimator::LeaveOneOut(_) => "leave-one-out".into(),
            Estimator::KCollusion { k, .. } => format!("{k}-collusion"),
            Estimator::FixedFraction { fraction } => format!("fixed-fraction({fraction})"),
            Estimator::Oracle { .. } => "oracle".into(),
            Estimator::Custom { label, .. } => label.clone(),
        }
    }

    /// The views the construction must satisfy. `known_sets[i]` is the set
    /// of x-packets terminal `i` knows (own + received); `n_packets` the
    /// size of the x-pool.
    pub fn views(&self, known_sets: &[BTreeSet<usize>], n_packets: usize) -> Vec<EveView> {
        match self {
            Estimator::LeaveOneOut(_) => {
                known_sets.iter().map(|k| candidate_view(k, n_packets)).collect()
            }
            Estimator::KCollusion { k, .. } => {
                let n = known_sets.len();
                let k = (*k).min(n);
                let mut views = Vec::new();
                for mask in 1u32..(1 << n) {
                    if mask.count_ones() as usize != k {
                        continue;
                    }
                    let mut union = BTreeSet::new();
                    for (i, ks) in known_sets.iter().enumerate() {
                        if mask & (1 << i) != 0 {
                            union.extend(ks.iter().copied());
                        }
                    }
                    views.push(candidate_view(&union, n_packets));
                }
                views
            }
            Estimator::FixedFraction { fraction } => {
                assert!((0.0..=1.0).contains(fraction), "fraction out of range");
                let cap = (fraction * FRACTION_SCALE as f64).floor() as u32;
                vec![EveView {
                    miss_capacity: vec![cap; n_packets],
                    row_demand: FRACTION_SCALE,
                    concede: None,
                }]
            }
            Estimator::Oracle { eve_known } => {
                let mut cap = vec![1u32; n_packets];
                for &j in eve_known {
                    if j < n_packets {
                        cap[j] = 0;
                    }
                }
                vec![EveView { miss_capacity: cap, row_demand: 1, concede: None }]
            }
            Estimator::Custom { candidates, .. } => candidates
                .iter()
                .map(|cand| {
                    let mut cap = vec![1u32; n_packets];
                    for &j in cand {
                        if j < n_packets {
                            cap[j] = 0;
                        }
                    }
                    // No concession: these candidates are adversary
                    // positions, not trusted members.
                    EveView { miss_capacity: cap, row_demand: 1, concede: None }
                })
                .collect(),
        }
    }

    /// The paper's pairwise sizing: a lower bound on how many packets of
    /// `shared` (the packets Alice shares with terminal `i`) Eve missed.
    /// `coordinator` and `terminal` are excluded from the candidate pool.
    pub fn pair_budget(
        &self,
        shared: &BTreeSet<usize>,
        known_sets: &[BTreeSet<usize>],
        coordinator: usize,
        terminal: usize,
    ) -> usize {
        match self {
            Estimator::LeaveOneOut(tuning) => {
                let raw = known_sets
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != coordinator && *j != terminal)
                    .map(|(_, k)| shared.difference(k).count())
                    .min();
                match raw {
                    Some(r) => tuning.apply(r),
                    None => 0, // no third terminal to impersonate Eve
                }
            }
            Estimator::KCollusion { k, tuning } => {
                let candidates: Vec<usize> =
                    (0..known_sets.len()).filter(|&j| j != coordinator && j != terminal).collect();
                if candidates.len() < *k || *k == 0 {
                    return 0;
                }
                let mut best = usize::MAX;
                // All k-subsets of the candidate terminals.
                let m = candidates.len();
                for mask in 1u32..(1 << m) {
                    if mask.count_ones() as usize != *k {
                        continue;
                    }
                    let mut union = BTreeSet::new();
                    for (bit, &cand) in candidates.iter().enumerate() {
                        if mask & (1 << bit) != 0 {
                            union.extend(known_sets[cand].iter().copied());
                        }
                    }
                    best = best.min(shared.difference(&union).count());
                }
                tuning.apply(best)
            }
            Estimator::FixedFraction { fraction } => {
                (shared.len() as f64 * fraction).floor() as usize
            }
            Estimator::Oracle { eve_known } => shared.difference(eve_known).count(),
            Estimator::Custom { candidates, tuning, .. } => {
                let raw = candidates.iter().map(|cand| shared.difference(cand).count()).min();
                match raw {
                    Some(r) => tuning.apply(r),
                    None => 0,
                }
            }
        }
    }
}

fn candidate_view(known: &BTreeSet<usize>, n_packets: usize) -> EveView {
    let mut cap = vec![1u32; n_packets];
    for &j in known {
        if j < n_packets {
            cap[j] = 0;
        }
    }
    EveView { miss_capacity: cap, row_demand: 1, concede: Some(known.clone()) }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(v: &[usize]) -> BTreeSet<usize> {
        v.iter().copied().collect()
    }

    #[test]
    fn leave_one_out_matches_paper_example_logic() {
        // Terminals: 0 = Alice (knows everything she sent: 0..10),
        // 1 = Bob (received evens), 2 = Calvin (received 0,1,2,3).
        let known =
            vec![set(&[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]), set(&[0, 2, 4, 6, 8]), set(&[0, 1, 2, 3])];
        let est = Estimator::LeaveOneOut(Tuning::default());
        // Bob's budget: candidates = {Calvin}. |R_bob \ K_calvin| = |{4,6,8}| = 3.
        let shared_bob = set(&[0, 2, 4, 6, 8]);
        assert_eq!(est.pair_budget(&shared_bob, &known, 0, 1), 3);
        // Calvin's budget: candidates = {Bob}. |{0,1,2,3} \ {0,2,4,6,8}| = |{1,3}| = 2.
        let shared_calvin = set(&[0, 1, 2, 3]);
        assert_eq!(est.pair_budget(&shared_calvin, &known, 0, 2), 2);
    }

    #[test]
    fn leave_one_out_no_candidates_is_zero() {
        // n = 2: nobody left to impersonate Eve.
        let known = vec![set(&[0, 1, 2]), set(&[0, 1])];
        let est = Estimator::LeaveOneOut(Tuning::default());
        assert_eq!(est.pair_budget(&set(&[0, 1]), &known, 0, 1), 0);
    }

    #[test]
    fn tuning_scale_and_slack() {
        let t = Tuning { scale: 0.5, slack: 1 };
        assert_eq!(t.apply(10), 4); // floor(5) - 1
        assert_eq!(t.apply(1), 0);
        assert_eq!(t.apply(0), 0);
    }

    #[test]
    fn k_collusion_is_more_conservative() {
        // Four terminals; candidate unions shrink the budget.
        let known = vec![
            set(&(0..12).collect::<Vec<_>>()), // Alice
            set(&[0, 1, 2, 3, 4, 5]),          // target
            set(&[0, 1, 2]),
            set(&[3, 4]),
        ];
        let shared = set(&[0, 1, 2, 3, 4, 5]);
        let est1 = Estimator::LeaveOneOut(Tuning::default());
        let est2 = Estimator::KCollusion { k: 2, tuning: Tuning::default() };
        let b1 = est1.pair_budget(&shared, &known, 0, 1);
        let b2 = est2.pair_budget(&shared, &known, 0, 1);
        // k=1: min(|shared\{0,1,2}|, |shared\{3,4}|) = min(3, 4) = 3.
        assert_eq!(b1, 3);
        // k=2: union {0,1,2,3,4} leaves only {5}.
        assert_eq!(b2, 1);
        assert!(b2 <= b1);
    }

    #[test]
    fn k_collusion_insufficient_candidates() {
        let known = vec![set(&[0, 1]), set(&[0]), set(&[1])];
        let est = Estimator::KCollusion { k: 2, tuning: Tuning::default() };
        // Only one candidate (terminal 2) after excluding the pair.
        assert_eq!(est.pair_budget(&set(&[0]), &known, 0, 1), 0);
    }

    #[test]
    fn fixed_fraction_budget() {
        let est = Estimator::FixedFraction { fraction: 0.25 };
        assert_eq!(est.pair_budget(&set(&[0, 1, 2, 3, 4, 5, 6, 7]), &[], 0, 1), 2);
        assert_eq!(est.pair_budget(&set(&[0]), &[], 0, 1), 0);
    }

    #[test]
    fn oracle_budget_is_exact() {
        let est = Estimator::Oracle { eve_known: set(&[0, 2, 4]) };
        assert_eq!(est.pair_budget(&set(&[0, 1, 2, 3]), &[], 0, 1), 2); // {1, 3}
    }

    #[test]
    fn views_shapes() {
        let known = vec![set(&[0, 1]), set(&[2, 3])];
        let loo = Estimator::LeaveOneOut(Tuning::default());
        let views = loo.views(&known, 5);
        assert_eq!(views.len(), 2);
        assert_eq!(views[0].miss_capacity, vec![0, 0, 1, 1, 1]);
        assert_eq!(views[0].concede, Some(set(&[0, 1])));
        assert_eq!(views[0].row_demand, 1);

        let oracle = Estimator::Oracle { eve_known: set(&[4]) };
        let views = oracle.views(&known, 5);
        assert_eq!(views.len(), 1);
        assert_eq!(views[0].miss_capacity, vec![1, 1, 1, 1, 0]);
        assert_eq!(views[0].concede, None);

        let ff = Estimator::FixedFraction { fraction: 0.5 };
        let views = ff.views(&known, 3);
        assert_eq!(views[0].row_demand, FRACTION_SCALE);
        assert_eq!(views[0].miss_capacity, vec![8, 8, 8]);

        let kc = Estimator::KCollusion { k: 2, tuning: Tuning::default() };
        let views = kc.views(&known, 5);
        assert_eq!(views.len(), 1); // C(2,2) = 1
        assert_eq!(views[0].miss_capacity, vec![0, 0, 0, 0, 1]);
    }

    #[test]
    fn custom_estimator_views_and_budget() {
        let candidates = vec![set(&[0, 1]), set(&[2, 3])];
        let est =
            Estimator::Custom { label: "positions".into(), candidates, tuning: Tuning::default() };
        let views = est.views(&[], 5);
        assert_eq!(views.len(), 2);
        assert_eq!(views[0].miss_capacity, vec![0, 0, 1, 1, 1]);
        assert_eq!(views[0].concede, None, "position candidates never concede");
        // Budget: min over candidates of what each would have missed.
        let shared = set(&[0, 2, 4]);
        // Candidate {0,1} misses {2,4} = 2; candidate {2,3} misses {0,4} = 2.
        assert_eq!(est.pair_budget(&shared, &[], 0, 1), 2);
        assert_eq!(est.name(), "positions");
    }

    #[test]
    fn custom_estimator_without_candidates_is_useless() {
        let est = Estimator::Custom {
            label: "empty".into(),
            candidates: vec![],
            tuning: Tuning::default(),
        };
        assert_eq!(est.pair_budget(&set(&[0, 1]), &[], 0, 1), 0);
        assert!(est.views(&[], 3).is_empty());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Estimator::LeaveOneOut(Tuning::default()).name(), "leave-one-out");
        assert_eq!(Estimator::KCollusion { k: 2, tuning: Tuning::default() }.name(), "2-collusion");
        assert!(Estimator::FixedFraction { fraction: 0.3 }.name().contains("0.3"));
        assert_eq!(Estimator::Oracle { eve_known: set(&[]) }.name(), "oracle");
    }
}
