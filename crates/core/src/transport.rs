//! Fragmented reliable messaging.
//!
//! The paper's "reliably broadcasts" hides a link-layer reality the
//! efficiency metric cannot ignore: a control message larger than one
//! frame must be fragmented (802.11 fragmentation), because retransmitting
//! a 2 kB announcement wholesale every time one receiver sits in a jammed
//! slot would burn orders of magnitude more air time than re-sending the
//! one lost fragment. This module reliably delivers a message of any size:
//!
//! * the payload is split into fragments of at most [`FRAGMENT_PAYLOAD_BITS`]
//!   bits, each with a [`FRAGMENT_HEADER_BITS`] header;
//! * each fragment is broadcast and re-broadcast until every target has
//!   it (per-fragment loss recovery);
//! * each target acknowledges the *message* once, with a block-ACK
//!   ([`thinair_netsim::ACK_BITS`]), as an 802.11 block-ack session
//!   would.
//!
//! All bits — data fragments, retransmissions, block-ACKs — are charged
//! to the [`TxStats`] ledger.

use thinair_netsim::stats::TxClass;
use thinair_netsim::{Medium, NodeId, ReliableError, TxStats, ACK_BITS};

use crate::error::ProtocolError;

/// Maximum payload bits per fragment (100 bytes, one paper packet).
pub const FRAGMENT_PAYLOAD_BITS: u64 = 800;

/// Per-fragment framing overhead (sequence + fragment number + FCS).
pub const FRAGMENT_HEADER_BITS: u64 = 48;

/// Number of fragments a message of `bits` bits needs.
pub fn fragment_count(bits: u64) -> u64 {
    bits.div_ceil(FRAGMENT_PAYLOAD_BITS).max(1)
}

/// Total bits put on air for a loss-free delivery of a `bits`-bit message
/// (fragments + headers, excluding ACKs).
pub fn message_air_bits(bits: u64) -> u64 {
    let frags = fragment_count(bits);
    bits + frags * FRAGMENT_HEADER_BITS
}

/// Reliably delivers a `bits`-bit message from `tx` to every target,
/// fragment by fragment. Returns the number of transmissions used.
pub fn reliable_message(
    mut medium: impl Medium,
    stats: &mut TxStats,
    tx: NodeId,
    bits: u64,
    targets: &[NodeId],
    class: TxClass,
    max_attempts: u32,
) -> Result<u32, ProtocolError> {
    assert!(!targets.contains(&tx), "transmitter cannot be its own target");
    if targets.is_empty() {
        return Ok(0);
    }
    let frags = fragment_count(bits);
    let mut attempts_total = 0u32;
    let mut remaining = bits;
    for _ in 0..frags {
        let payload = remaining.min(FRAGMENT_PAYLOAD_BITS);
        remaining -= payload;
        let frag_bits = payload + FRAGMENT_HEADER_BITS;
        let mut missing: Vec<NodeId> = targets.to_vec();
        let mut attempts = 0u32;
        while !missing.is_empty() {
            if attempts >= max_attempts {
                missing.sort_unstable();
                return Err(ProtocolError::Reliable(ReliableError::Unreachable {
                    missing,
                    attempts,
                }));
            }
            attempts += 1;
            attempts_total += 1;
            let delivery = medium.transmit(tx, frag_bits);
            stats.record(tx, class, frag_bits);
            let before = missing.len();
            missing.retain(|&node| !delivery.got(node));
            // If nobody new was reached, the remaining targets are almost
            // certainly sitting in a jammed interference slot. A real
            // sender's carrier sense defers while the jammer is on, and
            // the rotation schedule will clear the target; waiting costs
            // no bits. Skip to the next interference slot.
            if !missing.is_empty() && missing.len() == before {
                medium.tick();
            }
        }
    }
    // One block-ACK per target for the whole message.
    for &t in targets {
        stats.record(t, TxClass::Ack, ACK_BITS);
    }
    Ok(attempts_total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use thinair_netsim::IidMedium;

    #[test]
    fn fragment_arithmetic() {
        assert_eq!(fragment_count(1), 1);
        assert_eq!(fragment_count(800), 1);
        assert_eq!(fragment_count(801), 2);
        assert_eq!(fragment_count(8000), 10);
        assert_eq!(message_air_bits(800), 848);
        assert_eq!(message_air_bits(801), 801 + 96);
    }

    #[test]
    fn lossless_costs_exactly_air_bits_plus_acks() {
        let mut m = IidMedium::symmetric(4, 0.0, 1);
        let mut stats = TxStats::new(4);
        let att = reliable_message(&mut m, &mut stats, 0, 2000, &[1, 2, 3], TxClass::Control, 100)
            .unwrap();
        assert_eq!(att, 3); // 3 fragments, one attempt each
        assert_eq!(stats.of(0, TxClass::Control), message_air_bits(2000));
        assert_eq!(stats.class_total(TxClass::Ack), 3 * ACK_BITS);
    }

    #[test]
    fn lossy_channel_only_repeats_lost_fragments() {
        // With p = 0.5 and a 10-fragment message, expected attempts ≈
        // 10 / (1 - 0.5) = 20 per target-ish; crucially the cost must be
        // ~frag-sized retransmissions, not message-sized ones.
        let mut m = IidMedium::symmetric(2, 0.5, 7);
        let mut stats = TxStats::new(2);
        let bits = 8000;
        reliable_message(&mut m, &mut stats, 0, bits, &[1], TxClass::Control, 10_000).unwrap();
        let spent = stats.of(0, TxClass::Control);
        // Must be far below the "retransmit whole message" cost
        // (~2x * 8000 * attempts) and at least the loss-free cost.
        assert!(spent >= message_air_bits(bits));
        assert!(spent < 6 * bits, "spent {spent}");
    }

    #[test]
    fn unreachable_target_reports_error() {
        let mut m = IidMedium::symmetric(2, 1.0, 3);
        let mut stats = TxStats::new(2);
        let err =
            reliable_message(&mut m, &mut stats, 0, 100, &[1], TxClass::Control, 4).unwrap_err();
        assert!(matches!(err, ProtocolError::Reliable(_)));
    }

    #[test]
    fn empty_targets_cost_nothing() {
        let mut m = IidMedium::symmetric(2, 0.5, 3);
        let mut stats = TxStats::new(2);
        let att = reliable_message(&mut m, &mut stats, 0, 5000, &[], TxClass::Control, 4).unwrap();
        assert_eq!(att, 0);
        assert_eq!(stats.total(), 0);
    }
}
