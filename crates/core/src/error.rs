//! Protocol-level errors.

use thinair_netsim::ReliableError;

/// Everything that can go wrong while running a protocol round.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolError {
    /// The reliable-broadcast layer gave up (a terminal is unreachable);
    /// the round cannot complete because the paper's protocol assumes
    /// reliable control-plane delivery.
    Reliable(ReliableError),
    /// Alice could not find coefficient matrices satisfying the
    /// decodability checks within the redraw budget (astronomically
    /// unlikely; indicates a caller passing degenerate parameters).
    ConstructionFailed(&'static str),
    /// A terminal failed to reconstruct the y/s-packets it is entitled to.
    /// This is a protocol invariant violation, never expected in
    /// operation.
    DecodeFailed {
        /// Which terminal failed.
        terminal: usize,
        /// What it was decoding.
        what: &'static str,
    },
    /// A wire message failed to parse.
    Wire(crate::wire::WireError),
    /// A message failed authentication (active-adversary defence).
    BadAuthentication {
        /// Claimed sender of the rejected message.
        claimed_sender: usize,
    },
    /// Parameters out of range (e.g., zero packets).
    BadConfig(&'static str),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Reliable(e) => write!(f, "reliable broadcast failed: {e}"),
            ProtocolError::ConstructionFailed(what) => {
                write!(f, "coefficient construction failed: {what}")
            }
            ProtocolError::DecodeFailed { terminal, what } => {
                write!(f, "terminal {terminal} failed to decode {what}")
            }
            ProtocolError::Wire(e) => write!(f, "wire format error: {e}"),
            ProtocolError::BadAuthentication { claimed_sender } => {
                write!(f, "message claiming sender {claimed_sender} failed authentication")
            }
            ProtocolError::BadConfig(what) => write!(f, "bad configuration: {what}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<ReliableError> for ProtocolError {
    fn from(e: ReliableError) -> Self {
        ProtocolError::Reliable(e)
    }
}

impl From<crate::wire::WireError> for ProtocolError {
    fn from(e: crate::wire::WireError) -> Self {
        ProtocolError::Wire(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = ProtocolError::DecodeFailed { terminal: 3, what: "y-packets" };
        assert!(e.to_string().contains("terminal 3"));
        let e = ProtocolError::BadConfig("zero packets");
        assert!(e.to_string().contains("zero packets"));
        let e = ProtocolError::BadAuthentication { claimed_sender: 2 };
        assert!(e.to_string().contains("sender 2"));
    }

    #[test]
    fn from_reliable_error() {
        let r = ReliableError::Unreachable { missing: vec![1], attempts: 3 };
        let e: ProtocolError = r.clone().into();
        assert_eq!(e, ProtocolError::Reliable(r));
    }
}
