//! Standalone pairwise secrets (paper §3.1, without phase 2).
//!
//! Some applications only need Alice to share a secret with each terminal
//! *individually* — e.g. per-link encryption keys — in which case phase
//! 2's redistribution is unnecessary and the full per-pair budget `m_i`
//! (not `min_i m_i`) is extractable for every pair. This module runs
//! phase 1, sizes each pair with the estimator, and extracts each
//! pairwise secret with a Cauchy privacy amplifier over the pair's shared
//! packets — exactly the example of §3.1, at scale.
//!
//! The per-pair secrets are *individually* uniform given Eve's assumed
//! knowledge. Unlike the group construction nothing is ever published
//! about their contents (there are no z-packets), so no joint Hall
//! condition is needed: leaking information about `y^{(i)}` to terminal
//! `j` is not a concern — both are trusted — and Eve sees only the
//! coefficient announcements.

use std::collections::BTreeSet;

use rand::Rng;
use thinair_gf::{Gf256, Matrix};
use thinair_mds::cauchy_matrix;
use thinair_netsim::stats::TxClass;
use thinair_netsim::{Medium, TxStats};

use crate::error::ProtocolError;
use crate::estimate::Estimator;
use crate::eve::EveLedger;
use crate::packet::Payload;
use crate::phase1::{run_phase1, Phase1Config, XPool};
use crate::round::{RoundConfig, XSchedule};
use crate::transport::reliable_message;
use crate::wire::Message;

/// The outcome of a pairwise-secrets round.
#[derive(Clone, Debug)]
pub struct PairwiseOutcome {
    /// Per terminal: the secret it now shares with the coordinator
    /// (empty for the coordinator's own slot and for pairs with budget
    /// 0).
    pub secrets: Vec<Vec<Payload>>,
    /// Per terminal: the secret's coefficient rows in x-space.
    pub secret_rows: Vec<Matrix>,
    /// The x-pool.
    pub pool: XPool,
    /// Bit ledger.
    pub stats: TxStats,
    /// Ground-truth Eve.
    pub eve: EveLedger,
}

impl PairwiseOutcome {
    /// The paper's reliability for the pair (coordinator, `terminal`).
    pub fn reliability(&self, terminal: usize) -> f64 {
        self.eve.reliability(&self.secret_rows[terminal])
    }

    /// Total secret bits across all pairs.
    pub fn secret_bits(&self) -> u64 {
        self.secrets.iter().map(|s| s.iter().map(|p| (p.len() * 8) as u64).sum::<u64>()).sum()
    }

    /// Efficiency across all pairs (total pairwise secret bits over all
    /// transmitted bits).
    pub fn efficiency(&self) -> f64 {
        let total = self.stats.total();
        if total == 0 {
            0.0
        } else {
            self.secret_bits() as f64 / total as f64
        }
    }
}

/// Runs phase 1 and extracts one pairwise secret per terminal.
pub fn run_pairwise_round(
    mut medium: impl Medium,
    n_terminals: usize,
    coordinator: usize,
    cfg: &RoundConfig,
    rng: &mut impl Rng,
) -> Result<PairwiseOutcome, ProtocolError> {
    let x_per_terminal = match &cfg.schedule {
        XSchedule::CoordinatorOnly(n) => {
            let mut v = vec![0; n_terminals];
            v[coordinator] = *n;
            v
        }
        XSchedule::Uniform(per) => vec![*per; n_terminals],
        XSchedule::Explicit(v) => v.clone(),
    };
    let n_packets: usize = x_per_terminal.iter().sum();
    let mut stats = TxStats::new(medium.node_count());
    let mut eve = EveLedger::new(n_packets);
    let p1 = Phase1Config {
        x_per_terminal,
        payload_len: cfg.payload_len,
        max_attempts: cfg.max_attempts,
    };
    let pool = run_phase1(&mut medium, &mut stats, &mut eve, &p1, n_terminals, coordinator, rng)?;

    let estimator = match &cfg.estimator {
        Estimator::Oracle { .. } => Estimator::Oracle { eve_known: eve.received().clone() },
        other => other.clone(),
    };

    let mut secrets = vec![Vec::new(); n_terminals];
    let mut secret_rows = vec![Matrix::zero(0, n_packets); n_terminals];
    for i in 0..n_terminals {
        if i == coordinator {
            continue;
        }
        let shared: Vec<usize> =
            pool.known[coordinator].intersection(&pool.known[i]).copied().collect();
        let shared_set: BTreeSet<usize> = shared.iter().copied().collect();
        let budget =
            estimator.pair_budget(&shared_set, &pool.known, coordinator, i).min(shared.len());
        if budget == 0 {
            continue;
        }
        // Cauchy privacy amplification over the shared set (§3.1): the
        // outputs stay uniform as long as Eve misses >= budget of the
        // inputs, whichever ones they are.
        let ext = cauchy_matrix(budget, shared.len()).map_err(|_| {
            ProtocolError::ConstructionFailed("pairwise extractor exceeds field size")
        })?;
        let mut rows = Matrix::zero(0, n_packets);
        for r in 0..budget {
            let mut row = vec![Gf256::ZERO; n_packets];
            for (c_idx, &j) in shared.iter().enumerate() {
                row[j] = ext[(r, c_idx)];
            }
            rows.push_row(&row);
        }
        let shared_payloads = pool.payloads.select_rows(&shared);
        secrets[i] = ext.mul_plane(&shared_payloads).to_payloads();
        secret_rows[i] = rows;
    }

    // The announcement per pair compresses to (seed, sizes) exactly like
    // the group plan: the extractor is canonical given the reports.
    let targets: Vec<usize> = (0..n_terminals).filter(|&t| t != coordinator).collect();
    let msg = Message::PlanAnnounce { seed: 0, m: 0, l: 0 };
    reliable_message(
        &mut medium,
        &mut stats,
        coordinator,
        msg.bits(),
        &targets,
        TxClass::Control,
        cfg.max_attempts,
    )?;

    Ok(PairwiseOutcome { secrets, secret_rows, pool, stats, eve })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use thinair_netsim::IidMedium;

    fn cfg(n: usize) -> RoundConfig {
        RoundConfig {
            schedule: XSchedule::CoordinatorOnly(n),
            payload_len: 16,
            estimator: Estimator::Oracle { eve_known: Default::default() },
            ..RoundConfig::default()
        }
    }

    #[test]
    fn pairwise_secrets_are_individually_perfect_with_oracle() {
        let mut rng = StdRng::seed_from_u64(1);
        let medium = IidMedium::symmetric(5, 0.5, 3);
        let out = run_pairwise_round(medium, 4, 0, &cfg(50), &mut rng).unwrap();
        let mut nonempty = 0;
        for i in 1..4 {
            if !out.secrets[i].is_empty() {
                nonempty += 1;
                assert_eq!(out.reliability(i), 1.0, "pair (0,{i}) leaked");
            }
        }
        assert!(nonempty >= 2, "expected most pairs to produce secrets");
        assert!(out.efficiency() > 0.0);
    }

    #[test]
    fn pairwise_budgets_exceed_group_budget() {
        // The whole point of the standalone mode: per-pair secrets are not
        // capped by the weakest pair.
        let mut rng = StdRng::seed_from_u64(7);
        // Terminal 3's channel is much worse than 1's and 2's.
        let mut m = vec![vec![0.4; 5]; 5];
        for row in m.iter_mut() {
            row[3] = 0.9;
        }
        let medium = IidMedium::from_matrix(m, 11);
        let out = run_pairwise_round(medium, 4, 0, &cfg(60), &mut rng).unwrap();
        let strong = out.secrets[1].len().max(out.secrets[2].len());
        let weak = out.secrets[3].len();
        assert!(strong > weak, "strong pairs ({strong}) should beat the weak pair ({weak})");
    }

    #[test]
    fn coordinator_slot_is_empty() {
        let mut rng = StdRng::seed_from_u64(2);
        let medium = IidMedium::symmetric(4, 0.5, 9);
        let out = run_pairwise_round(medium, 3, 1, &cfg(30), &mut rng).unwrap();
        assert!(out.secrets[1].is_empty());
        assert_eq!(out.secret_rows[1].rows(), 0);
    }

    #[test]
    fn secret_rows_match_secret_values() {
        // The announced coefficient rows applied to the ground-truth pool
        // must reproduce the extracted payloads.
        let mut rng = StdRng::seed_from_u64(5);
        let medium = IidMedium::symmetric(4, 0.4, 13);
        let out = run_pairwise_round(medium, 3, 0, &cfg(40), &mut rng).unwrap();
        for i in 1..3 {
            if out.secrets[i].is_empty() {
                continue;
            }
            let recomputed = out.secret_rows[i].mul_plane(&out.pool.payloads).to_payloads();
            assert_eq!(recomputed, out.secrets[i], "pair (0,{i})");
        }
    }
}
