//! Defending against an *active* adversary (paper §1–2).
//!
//! "If Eve is an active adversary (hence may try to impersonate a
//! terminal), then the terminals need to share a (small) initial piece of
//! information when they first communicate ... any shared secrets
//! subsequently generated through the protocol do not depend in any way on
//! the bootstrap information."
//!
//! The attack that matters for this protocol is report/coefficient
//! forgery: if Eve can inject a fake [`Message::ReceptionReport`] claiming
//! a terminal received packets it did not, she can steer Alice into
//! building y-rows whose supports she fully knows. The defence is a MAC on
//! every control message keyed by the current group key: initially the
//! out-of-band bootstrap secret, and from then on a key derived from the
//! accumulated erasure-generated pool (so the bootstrap secret's lifetime
//! is one round).

use crate::error::ProtocolError;
use crate::kdf::{derive_key, hmac_sha256};
use crate::wire::{Message, WireError};

/// A MAC context for control-plane messages.
#[derive(Clone, Debug)]
pub struct Authenticator {
    key: [u8; 32],
}

impl Authenticator {
    /// Creates an authenticator from the bootstrap secret (first use) or a
    /// pool-derived key (steady state).
    pub fn new(secret: &[u8]) -> Self {
        Authenticator { key: derive_key(secret, "thinair-auth-v1") }
    }

    /// Rotates to a key derived from freshly generated secret material,
    /// retiring the previous key.
    pub fn rotate(&mut self, new_secret: &[u8]) {
        self.key = derive_key(new_secret, "thinair-auth-v1");
    }

    /// Wraps a message in an authenticated envelope.
    pub fn seal(&self, msg: &Message) -> Message {
        let inner = msg.encode().to_vec();
        let tag = hmac_sha256(&self.key, &inner);
        Message::Authenticated { inner, tag }
    }

    /// Verifies and unwraps an authenticated envelope.
    ///
    /// Returns the inner message, or an error when the tag is wrong (an
    /// impersonation attempt) or the envelope is malformed.
    pub fn open(
        &self,
        envelope: &Message,
        claimed_sender: usize,
    ) -> Result<Message, ProtocolError> {
        let Message::Authenticated { inner, tag } = envelope else {
            return Err(ProtocolError::Wire(WireError::BadLength));
        };
        let expect = hmac_sha256(&self.key, inner);
        // Constant-time-ish comparison (not a real side-channel concern in
        // a simulator, but it is the right habit).
        let mut diff = 0u8;
        for (a, b) in expect.iter().zip(tag.iter()) {
            diff |= a ^ b;
        }
        if diff != 0 {
            return Err(ProtocolError::BadAuthentication { claimed_sender });
        }
        Ok(Message::decode(inner)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::bitmap_from_received;

    fn report() -> Message {
        Message::ReceptionReport {
            terminal: 2,
            n_packets: 16,
            bitmap: bitmap_from_received(16, [1usize, 3, 5].into_iter()),
        }
    }

    #[test]
    fn seal_open_round_trip() {
        let auth = Authenticator::new(b"bootstrap secret");
        let sealed = auth.seal(&report());
        let opened = auth.open(&sealed, 2).unwrap();
        assert_eq!(opened, report());
    }

    #[test]
    fn forged_message_rejected() {
        // Eve does not know the bootstrap secret; whatever key she picks,
        // her envelope must be rejected.
        let terminals = Authenticator::new(b"bootstrap secret");
        let eve = Authenticator::new(b"a guess");
        let forged = eve.seal(&report());
        let err = terminals.open(&forged, 2).unwrap_err();
        assert_eq!(err, ProtocolError::BadAuthentication { claimed_sender: 2 });
    }

    #[test]
    fn tampered_payload_rejected() {
        let auth = Authenticator::new(b"k");
        let sealed = auth.seal(&report());
        let Message::Authenticated { mut inner, tag } = sealed else { panic!() };
        inner[4] ^= 0x01; // flip a bitmap bit: claim one more packet
        let tampered = Message::Authenticated { inner, tag };
        assert!(auth.open(&tampered, 2).is_err());
    }

    #[test]
    fn rotation_retires_old_key() {
        let mut a = Authenticator::new(b"bootstrap");
        let sealed_old = a.seal(&report());
        a.rotate(b"fresh pool material");
        assert!(a.open(&sealed_old, 2).is_err());
        let sealed_new = a.seal(&report());
        assert!(a.open(&sealed_new, 2).is_ok());
    }

    #[test]
    fn non_envelope_is_rejected() {
        let auth = Authenticator::new(b"k");
        assert!(auth.open(&report(), 2).is_err());
    }
}
