//! One full protocol round: phase 1 → construction → phase 2 → metrics.

use rand::Rng;
use thinair_gf::Matrix;
use thinair_netsim::{Medium, TxStats};

use crate::construct::{build_block_plan, build_plan, Plan, PlanParams};
use crate::error::ProtocolError;
use crate::estimate::{Estimator, Tuning};
use crate::eve::EveLedger;
use crate::packet::{Payload, PACKET_LEN};
use crate::phase1::{run_phase1, Phase1Config, XPool};
use crate::phase2::run_phase2;

/// Which terminals transmit x-packets in phase 1.
#[derive(Clone, Debug)]
pub enum XSchedule {
    /// Only the coordinator transmits `n` packets (the paper's baseline
    /// description, and Figure 1's setting).
    CoordinatorOnly(usize),
    /// Every terminal transmits `per_terminal` packets (the paper's §3.2
    /// "terminals take turns playing Alice's role" mitigation).
    Uniform(usize),
    /// Explicit per-terminal counts.
    Explicit(Vec<usize>),
}

impl XSchedule {
    /// Per-terminal x-packet counts for this schedule. Public because
    /// distributed runtimes (`thinair-net`) must derive the identical
    /// packet-ownership map on every node.
    pub fn resolve(&self, n_terminals: usize, coordinator: usize) -> Vec<usize> {
        match self {
            XSchedule::CoordinatorOnly(n) => {
                let mut v = vec![0; n_terminals];
                v[coordinator] = *n;
                v
            }
            XSchedule::Uniform(per) => vec![*per; n_terminals],
            XSchedule::Explicit(v) => v.clone(),
        }
    }
}

/// Which y-construction to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Construction {
    /// The support-sharing, Hall-checked construction (the default).
    Aligned,
    /// The naive per-terminal-block construction (§3.1 warning; ablation).
    NaiveBlocks,
}

/// Full configuration of a protocol round.
#[derive(Clone, Debug)]
pub struct RoundConfig {
    /// Phase-1 transmission schedule.
    pub schedule: XSchedule,
    /// Payload length in symbols (default: the paper's 100 bytes).
    pub payload_len: usize,
    /// Eve-erasure estimator.
    pub estimator: Estimator,
    /// y-construction variant.
    pub construction: Construction,
    /// Greedy-construction tunables (row cap, support floor, slack).
    pub plan_params: PlanParams,
    /// Retransmission budget per reliable broadcast.
    pub max_attempts: u32,
}

impl Default for RoundConfig {
    fn default() -> Self {
        RoundConfig {
            schedule: XSchedule::CoordinatorOnly(60),
            payload_len: PACKET_LEN,
            estimator: Estimator::LeaveOneOut(Tuning::default()),
            construction: Construction::Aligned,
            plan_params: PlanParams::default(),
            max_attempts: 1_000_000,
        }
    }
}

/// Everything a round produced, for both applications (the secret) and
/// evaluation (metrics and ground truth).
#[derive(Clone, Debug)]
pub struct RoundOutcome {
    /// Group-secret length in packets (`L`); 0 when no secret was
    /// possible.
    pub l: usize,
    /// Number of y-packets (`M`).
    pub m: usize,
    /// The group secret as derived by each terminal.
    pub secrets: Vec<Vec<Payload>>,
    /// The x-pool (ground truth, for analysis).
    pub pool: XPool,
    /// The construction used.
    pub plan: Plan,
    /// Exact bit ledger for the round.
    pub stats: TxStats,
    /// Eve's ground-truth knowledge state at the end of the round.
    pub eve: EveLedger,
}

impl RoundOutcome {
    /// True iff every terminal derived the identical secret.
    pub fn all_terminals_agree(&self) -> bool {
        self.secrets.windows(2).all(|w| w[0] == w[1])
    }

    /// The group secret (coordinator's copy); empty when `l == 0`.
    pub fn secret(&self) -> &[Payload] {
        &self.secrets[self.plan.coordinator]
    }

    /// Secret size in bits.
    pub fn secret_bits(&self) -> u64 {
        (self.l * self.pool.payload_len * 8) as u64
    }

    /// The paper's efficiency metric: secret bits over *all* transmitted
    /// bits.
    pub fn efficiency(&self) -> f64 {
        let total = self.stats.total();
        if total == 0 {
            0.0
        } else {
            self.secret_bits() as f64 / total as f64
        }
    }

    /// The paper's reliability metric `r ∈ [0, 1]` (1 = Eve knows
    /// nothing). Empty secrets count as reliability 1.
    pub fn reliability(&self) -> f64 {
        self.eve.reliability(&self.secret_rows_x())
    }

    /// Group-secret coefficient rows in x-space.
    pub fn secret_rows_x(&self) -> Matrix {
        self.plan.secret_rows_x()
    }
}

/// Runs one full group-secret round.
///
/// The medium's nodes `0..n_terminals` are the terminals; all remaining
/// nodes are Eve antennas (at least one is required for the reliability
/// ground truth; use a dummy far-away node if no adversary is modelled).
pub fn run_group_round(
    mut medium: impl Medium,
    n_terminals: usize,
    coordinator: usize,
    cfg: &RoundConfig,
    rng: &mut impl Rng,
) -> Result<RoundOutcome, ProtocolError> {
    let x_per_terminal = cfg.schedule.resolve(n_terminals, coordinator);
    let n_packets: usize = x_per_terminal.iter().sum();
    let mut stats = TxStats::new(medium.node_count());
    let mut eve = EveLedger::new(n_packets);
    let p1 = Phase1Config {
        x_per_terminal,
        payload_len: cfg.payload_len,
        max_attempts: cfg.max_attempts,
    };
    let pool = run_phase1(&mut medium, &mut stats, &mut eve, &p1, n_terminals, coordinator, rng)?;

    // The oracle estimator needs Eve's true reception set.
    let estimator = match &cfg.estimator {
        Estimator::Oracle { .. } => Estimator::Oracle { eve_known: eve.received().clone() },
        other => other.clone(),
    };

    let plan = match cfg.construction {
        Construction::Aligned => {
            build_plan(&pool.known, coordinator, n_packets, &estimator, rng, cfg.plan_params)?
        }
        Construction::NaiveBlocks => build_block_plan(
            &pool.known,
            coordinator,
            n_packets,
            &estimator,
            rng,
            cfg.plan_params.max_rows,
        )?,
    };

    if plan.l == 0 {
        return Ok(RoundOutcome {
            l: 0,
            m: 0,
            secrets: vec![Vec::new(); n_terminals],
            pool,
            plan,
            stats,
            eve,
        });
    }

    let out = run_phase2(&mut medium, &mut stats, &mut eve, &plan, &pool, cfg.max_attempts)?;
    debug_assert!(out.all_agree(), "terminals derived different secrets");
    Ok(RoundOutcome { l: plan.l, m: plan.m(), secrets: out.secrets, pool, plan, stats, eve })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use thinair_netsim::IidMedium;

    fn oracle_cfg(n: usize) -> RoundConfig {
        RoundConfig {
            schedule: XSchedule::CoordinatorOnly(n),
            payload_len: 20,
            estimator: Estimator::Oracle { eve_known: Default::default() },
            ..RoundConfig::default()
        }
    }

    #[test]
    fn end_to_end_group_round() {
        let mut rng = StdRng::seed_from_u64(1);
        let medium = IidMedium::symmetric(5, 0.4, 9); // 4 terminals + Eve
        let out = run_group_round(medium, 4, 0, &oracle_cfg(50), &mut rng).unwrap();
        assert!(out.l > 0, "expected a secret at p=0.4");
        assert!(out.all_terminals_agree());
        assert_eq!(out.secret().len(), out.l);
        assert!((out.reliability() - 1.0).abs() < 1e-12);
        let eff = out.efficiency();
        assert!(eff > 0.0 && eff < 1.0, "efficiency {eff}");
    }

    #[test]
    fn rotation_schedule_works() {
        let mut rng = StdRng::seed_from_u64(2);
        let medium = IidMedium::symmetric(4, 0.35, 11);
        let cfg = RoundConfig {
            schedule: XSchedule::Uniform(15),
            payload_len: 12,
            estimator: Estimator::Oracle { eve_known: Default::default() },
            ..RoundConfig::default()
        };
        let out = run_group_round(medium, 3, 1, &cfg, &mut rng).unwrap();
        assert_eq!(out.pool.n_packets, 45);
        if out.l > 0 {
            assert!(out.all_terminals_agree());
            assert!((out.reliability() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn leave_one_out_round_measures_reliability() {
        let mut rng = StdRng::seed_from_u64(3);
        let medium = IidMedium::symmetric(6, 0.5, 13); // 5 terminals + Eve
        let cfg = RoundConfig {
            schedule: XSchedule::CoordinatorOnly(60),
            payload_len: 16,
            estimator: Estimator::LeaveOneOut(Tuning::default()),
            ..RoundConfig::default()
        };
        let out = run_group_round(medium, 5, 0, &cfg, &mut rng).unwrap();
        let r = out.reliability();
        assert!((0.0..=1.0).contains(&r), "reliability {r}");
        // With 5 terminals and iid channels the estimate is usually sound.
        if out.l > 0 {
            assert!(out.all_terminals_agree());
        }
    }

    #[test]
    fn naive_blocks_round_runs() {
        let mut rng = StdRng::seed_from_u64(4);
        let medium = IidMedium::symmetric(4, 0.5, 17);
        let cfg = RoundConfig {
            construction: Construction::NaiveBlocks,
            schedule: XSchedule::CoordinatorOnly(40),
            payload_len: 8,
            estimator: Estimator::Oracle { eve_known: Default::default() },
            ..RoundConfig::default()
        };
        let out = run_group_round(medium, 3, 0, &cfg, &mut rng).unwrap();
        if out.l > 0 {
            assert!(out.all_terminals_agree());
        }
    }

    #[test]
    fn zero_budget_round_degrades_gracefully() {
        // Perfect channel: Eve hears everything; oracle says budget 0.
        let mut rng = StdRng::seed_from_u64(5);
        let medium = IidMedium::symmetric(4, 0.0, 19);
        let out = run_group_round(medium, 3, 0, &oracle_cfg(20), &mut rng).unwrap();
        assert_eq!(out.l, 0);
        assert_eq!(out.efficiency(), 0.0);
        assert_eq!(out.reliability(), 1.0); // nothing to leak
        assert!(out.secret().is_empty());
    }

    #[test]
    fn schedule_resolution() {
        assert_eq!(XSchedule::CoordinatorOnly(7).resolve(3, 1), vec![0, 7, 0]);
        assert_eq!(XSchedule::Uniform(4).resolve(3, 0), vec![4, 4, 4]);
        assert_eq!(XSchedule::Explicit(vec![1, 2, 3]).resolve(3, 0), vec![1, 2, 3]);
    }
}
