//! The y/z/s-packet construction — our realization of the paper's
//! "well-defined construction [9]".
//!
//! # What must hold
//!
//! Let `x ∈ GF(256)^N` be the x-packet pool, `K_i` the set of packets
//! terminal `i` knows, and `W` the `M×N` coefficient matrix of the
//! y-packets (`y = W·x`; row supports are public, contents are not).
//! Phase 2 publishes `z = C·y` (contents!) and announces `s = D·y`
//! (coefficients only), with `[C; D]` invertible `M×M`.
//!
//! *Decodability*: terminal `i` directly computes the rows with support
//! `⊆ K_i` (call them `J_i`, `M_i = |J_i|`); it recovers the rest from the
//! `M−L` z-packets provided `C[:, J̄_i]` has full column rank — guaranteed
//! here because `[C;D]` is a Cauchy matrix (every square submatrix
//! invertible), with an explicit check-and-redraw fallback when `M > 128`
//! forces random matrices.
//!
//! *Secrecy*: everything Eve has is linear in `x`: her received packets
//! (unit rows on her set `E`) plus the published `z` rows `C·W`. Writing
//! `U` for the packets Eve misses, the group secret `s` is perfectly
//! secret **iff `rank(W|_U) = M`** (restriction to the `U` columns):
//! since `[C;D]` is invertible, `rank([units(E); C·W; D·W]) −
//! rank([units(E); C·W]) = rank(W|_U) − rank((C·W)|_U)`, and
//! `rank((C·W)|_U) ≥ rank(W|_U) − L` with equality forced by genericity of
//! `C`; the difference equals `L` exactly when `rank(W|_U) = M`.
//!
//! *When does `rank(W|_U) = M` hold?* For generic (random) coefficients,
//! by the Lovász/Rado generic-rank theorem it holds iff **Hall's
//! condition** does: every subset `J` of rows satisfies
//! `|⋃_{r∈J} supp(r) ∩ U| ≥ |J|`. Alice cannot see `U`, so she enforces
//! Hall against every *candidate* Eve the estimator proposes
//! ([`crate::estimate::EveView`]), via incremental bipartite matchings
//! (one per view): a row is only admitted if, in every view, it can be
//! assigned `row_demand` units of capacity from the packets of its
//! support, displacing earlier assignments if necessary (augmenting
//! paths). Whenever the realized Eve misses at least what the estimator
//! assumed, Hall transfers to the true `U` and the measured reliability is
//! 1; when the estimator was too optimistic (few terminals, unlucky
//! placement) reliability degrades — exactly the mechanism behind the
//! paper's Figure 2.
//!
//! # Why supports are shared (the paper's y₁)
//!
//! Rows with support inside an *intersection* `K_i ∩ K_j` are decodable by
//! both terminals and count toward both `M_i` and `M_j` while consuming
//! Eve-unknown budget once — the reason the paper's 3-terminal example
//! gives Bob and Calvin a common y₁. The greedy below therefore builds
//! supports from the deepest intersections outward.

use std::collections::BTreeSet;

use rand::Rng;
use thinair_gf::{Gf256, Matrix};
use thinair_mds::cauchy_matrix;

use crate::error::ProtocolError;
use crate::estimate::{Estimator, EveView};

/// One y-packet: a sparse coefficient row over the x-pool.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct YRow {
    /// Sorted x-packet indices.
    pub support: Vec<usize>,
    /// Coefficients parallel to `support`.
    pub coeffs: Vec<Gf256>,
}

impl YRow {
    /// Densifies the row into an `n_packets`-wide coefficient vector.
    pub fn dense(&self, n_packets: usize) -> Vec<Gf256> {
        let mut v = vec![Gf256::ZERO; n_packets];
        for (&j, &c) in self.support.iter().zip(self.coeffs.iter()) {
            v[j] = c;
        }
        v
    }
}

/// The full coefficient plan for one protocol round.
#[derive(Clone, Debug)]
pub struct Plan {
    /// Number of packets in the x-pool.
    pub n_packets: usize,
    /// Index of the coordinating terminal ("Alice").
    pub coordinator: usize,
    /// The y-rows, in construction order.
    pub rows: Vec<YRow>,
    /// Dense `M×N` coefficient matrix (`y = w·x`).
    pub w: Matrix,
    /// `decodable[i]`: indices of rows terminal `i` can compute directly.
    pub decodable: Vec<Vec<usize>>,
    /// The pairwise budgets `m_i` the estimator granted (coordinator slot
    /// is 0 by convention).
    pub budgets: Vec<usize>,
    /// Group-secret length `L = min_i M_i` over non-coordinator terminals.
    pub l: usize,
    /// z-packet map: `(M−L)×M`, contents published.
    pub c_mat: Matrix,
    /// s-packet map: `L×M`, identities-only published.
    pub d_mat: Matrix,
}

impl Plan {
    /// Number of y-packets.
    pub fn m(&self) -> usize {
        self.rows.len()
    }

    /// The group-secret coefficient rows in x-coordinates (`D·W`, `L×N`).
    pub fn secret_rows_x(&self) -> Matrix {
        &self.d_mat * &self.w
    }

    /// The published z rows in x-coordinates (`C·W`, `(M−L)×N`).
    pub fn z_rows_x(&self) -> Matrix {
        &self.c_mat * &self.w
    }

    /// An empty plan (no secret possible this round).
    pub fn empty(n_packets: usize, coordinator: usize, n_terminals: usize) -> Self {
        Plan {
            n_packets,
            coordinator,
            rows: Vec::new(),
            w: Matrix::zero(0, n_packets),
            decodable: vec![Vec::new(); n_terminals],
            budgets: vec![0; n_terminals],
            l: 0,
            c_mat: Matrix::zero(0, 0),
            d_mat: Matrix::zero(0, 0),
        }
    }
}

// ---------------------------------------------------------------------------
// Hall ledger: incremental per-view matchings.
// ---------------------------------------------------------------------------

/// Incremental feasibility checker for the Hall condition against a set of
/// [`EveView`]s.
#[derive(Clone, Debug)]
pub struct HallLedger {
    views: Vec<ViewState>,
}

#[derive(Clone, Debug)]
struct ViewState {
    cap: Vec<u32>,
    used: Vec<u32>,
    row_demand: u32,
    concede: Option<BTreeSet<usize>>,
    /// Per admitted (non-conceded) row: its support and its flow
    /// assignment `(packet, units)`.
    rows: Vec<FlowRow>,
}

#[derive(Clone, Debug)]
struct FlowRow {
    support: Vec<usize>,
    flow: Vec<(usize, u32)>,
}

impl ViewState {
    fn new(view: &EveView) -> Self {
        ViewState {
            cap: view.miss_capacity.clone(),
            used: vec![0; view.miss_capacity.len()],
            row_demand: view.row_demand,
            concede: view.concede.clone(),
            rows: Vec::new(),
        }
    }

    fn conceded(&self, support: &[usize]) -> bool {
        match &self.concede {
            Some(k) => support.iter().all(|j| k.contains(j)),
            None => false,
        }
    }

    fn flow_at(row: &mut FlowRow, packet: usize) -> &mut u32 {
        if let Some(pos) = row.flow.iter().position(|&(p, _)| p == packet) {
            &mut row.flow[pos].1
        } else {
            row.flow.push((packet, 0));
            let last = row.flow.len() - 1;
            &mut row.flow[last].1
        }
    }

    /// Routes one unit of flow for row `r`, displacing other rows via
    /// augmenting paths. `visited` guards against cycles.
    fn place_unit(&mut self, r: usize, visited: &mut Vec<bool>) -> bool {
        // Direct free capacity first.
        for si in 0..self.rows[r].support.len() {
            let p = self.rows[r].support[si];
            if self.used[p] < self.cap[p] {
                self.used[p] += 1;
                *Self::flow_at(&mut self.rows[r], p) += 1;
                return true;
            }
        }
        // Displacement: steal a unit at p from some other row that can
        // re-place it elsewhere.
        for si in 0..self.rows[r].support.len() {
            let p = self.rows[r].support[si];
            for r2 in 0..self.rows.len() {
                if r2 == r || visited[r2] {
                    continue;
                }
                let has_flow = self.rows[r2].flow.iter().any(|&(pp, u)| pp == p && u > 0);
                if !has_flow {
                    continue;
                }
                visited[r2] = true;
                if self.place_unit(r2, visited) {
                    *Self::flow_at(&mut self.rows[r2], p) -= 1;
                    *Self::flow_at(&mut self.rows[r], p) += 1;
                    return true;
                }
            }
        }
        false
    }

    /// Attempts to admit a row; restores state and returns false on
    /// failure. `Conceded` means the view does not constrain the row
    /// (the candidate is a legitimate decoder of it).
    fn try_add(&mut self, support: &[usize]) -> AddResult {
        if self.conceded(support) {
            return AddResult::Conceded;
        }
        let snapshot_used = self.used.clone();
        let snapshot_rows = self.rows.clone();
        self.rows.push(FlowRow { support: support.to_vec(), flow: Vec::new() });
        let r = self.rows.len() - 1;
        for _ in 0..self.row_demand {
            let mut visited = vec![false; self.rows.len()];
            visited[r] = true;
            if !self.place_unit(r, &mut visited) {
                self.used = snapshot_used;
                self.rows = snapshot_rows;
                return AddResult::Rejected;
            }
        }
        AddResult::Matched
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum AddResult {
    /// The view admitted the row by assigning it Eve-unknown capacity.
    Matched,
    /// The view does not constrain the row (candidate is a decoder).
    Conceded,
    /// The view has no capacity left for the row.
    Rejected,
}

impl HallLedger {
    /// Builds a ledger from the estimator's views.
    pub fn new(views: &[EveView]) -> Self {
        HallLedger { views: views.iter().map(ViewState::new).collect() }
    }

    /// Atomically admits a row into every view, or none.
    ///
    /// A row is admitted only when (a) every view either concedes it or
    /// matches it, **and** (b) at least one view actually matched it. A
    /// row conceded by *every* view has no evidence of secrecy at all —
    /// under the estimator's own hypotheses Eve knows its entire support —
    /// so it is rejected. (Concretely: with the leave-one-out estimator, a
    /// packet received by every terminal is presumed received by Eve too.)
    pub fn try_add(&mut self, support: &[usize]) -> bool {
        let mut done = Vec::new();
        let mut matched_any = false;
        for (i, v) in self.views.iter_mut().enumerate() {
            let snap = v.clone();
            match v.try_add(support) {
                AddResult::Matched => {
                    matched_any = true;
                    done.push((i, snap));
                }
                AddResult::Conceded => {}
                AddResult::Rejected => {
                    for (j, snap) in done {
                        self.views[j] = snap;
                    }
                    return false;
                }
            }
        }
        if !matched_any {
            for (j, snap) in done {
                self.views[j] = snap;
            }
            return false;
        }
        true
    }
}

// ---------------------------------------------------------------------------
// The greedy builder.
// ---------------------------------------------------------------------------

/// Upper bound on the number of y-rows (keeps the `[C;D]` matrix within
/// Cauchy range and the round cheap).
pub const DEFAULT_MAX_ROWS: usize = 120;

/// Tunables of the greedy construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlanParams {
    /// Cap on the number of y-rows (must stay ≤ 128 so `[C;D]` is a
    /// Cauchy matrix).
    pub max_rows: usize,
    /// Minimum support size for a y-row. Small supports carry no
    /// statistical safety margin: a row over a 1-packet support is secret
    /// only if that one packet escaped Eve — a coin flip, not a
    /// concentration bound. The paper's construction always combines a
    /// whole shared set; this floor keeps the greedy honest when deep
    /// intersections shrink.
    pub support_floor: usize,
    /// Safety margin subtracted from each support's estimated Eve-unknown
    /// capacity before rows are allocated on it (absorbs the statistical
    /// fluctuation between the candidate proxies and the real Eve; the
    /// "more or less conservative" knob of §3.3).
    pub support_slack: usize,
}

impl Default for PlanParams {
    fn default() -> Self {
        PlanParams { max_rows: DEFAULT_MAX_ROWS, support_floor: 4, support_slack: 1 }
    }
}

impl PlanParams {
    /// Parameters with no conservatism — appropriate for the oracle
    /// estimator, whose capacities are exact.
    pub fn exact() -> Self {
        PlanParams { max_rows: DEFAULT_MAX_ROWS, support_floor: 1, support_slack: 0 }
    }
}

/// A support's estimated Eve-unknown capacity: the minimum, over the
/// views that constrain it, of the capacity the view assigns to it,
/// scaled by the estimator's conservatism factor. `None` when no view
/// constrains it (the row would be conceded everywhere — compromised
/// under the estimator's own hypotheses).
fn support_capacity(support: &[usize], views: &[EveView], scale: f64) -> Option<usize> {
    let mut best: Option<usize> = None;
    for view in views {
        if let Some(k) = &view.concede {
            if support.iter().all(|j| k.contains(j)) {
                continue; // conceded: this view does not constrain it
            }
        }
        let units: u32 =
            support.iter().map(|&j| view.miss_capacity.get(j).copied().unwrap_or(0)).sum();
        let cap = ((units / view.row_demand) as f64 * scale).floor() as usize;
        best = Some(best.map_or(cap, |b: usize| b.min(cap)));
    }
    best
}

/// How many times coefficients are redrawn before giving up.
const MAX_REDRAWS: usize = 32;

/// Builds the full plan for one round.
///
/// * `known_sets[i]` — packets terminal `i` knows (own + received).
/// * `coordinator` — the terminal playing Alice.
/// * `estimator` — how Eve's erasures are bounded.
pub fn build_plan(
    known_sets: &[BTreeSet<usize>],
    coordinator: usize,
    n_packets: usize,
    estimator: &Estimator,
    rng: &mut impl Rng,
    params: PlanParams,
) -> Result<Plan, ProtocolError> {
    let n = known_sets.len();
    if n < 2 {
        return Err(ProtocolError::BadConfig("need at least two terminals"));
    }
    if coordinator >= n {
        return Err(ProtocolError::BadConfig("coordinator out of range"));
    }
    let others: Vec<usize> = (0..n).filter(|&i| i != coordinator).collect();

    // 1. Pairwise budgets (the paper's M_i sizing).
    let mut budgets = vec![0usize; n];
    for &i in &others {
        let shared: BTreeSet<usize> =
            known_sets[coordinator].intersection(&known_sets[i]).copied().collect();
        budgets[i] = estimator.pair_budget(&shared, known_sets, coordinator, i);
    }
    if others.iter().any(|&i| budgets[i] == 0) {
        // Worst-case scenario of §3.2: some pairwise secret is empty, so
        // the group secret is too. (Role rotation at the session layer is
        // the paper's mitigation.)
        return Ok(Plan::empty(n_packets, coordinator, n));
    }
    // The group secret is L = min_i M_i: rows beyond the weakest budget
    // would add z-packet cost without adding a single secret bit, so cap
    // every budget at the common minimum ("phase 2 does not increase the
    // amount of secret information ... it redistributes it").
    let l_target = others.iter().map(|&i| budgets[i]).min().unwrap_or(0);
    for &i in &others {
        budgets[i] = budgets[i].min(l_target);
    }

    // 2. Hall ledger over the estimator's candidate-Eve views.
    let views = estimator.views(known_sets, n_packets);
    let mut hall = HallLedger::new(&views);

    // 3. Greedy support selection: deepest intersections first.
    let mut supports: Vec<Vec<usize>> = Vec::new(); // chosen rows' supports
    let mut counts = vec![0usize; n]; // rows decodable per terminal
    let mut seen_supports: BTreeSet<Vec<usize>> = BTreeSet::new();
    'levels: for g in (1..=others.len()).rev() {
        // All supports arising as K_c ∩ ⋂_{i ∈ S} K_i for |S| = g.
        let mut level: Vec<(Vec<usize>, Vec<usize>)> = Vec::new(); // (support, decoders)
        for mask in 1u32..(1 << others.len()) {
            if mask.count_ones() as usize != g {
                continue;
            }
            let mut t: BTreeSet<usize> = known_sets[coordinator].clone();
            for (bit, &i) in others.iter().enumerate() {
                if mask & (1 << bit) != 0 {
                    t = t.intersection(&known_sets[i]).copied().collect();
                }
            }
            if t.len() < params.support_floor.max(1) {
                continue;
            }
            let tv: Vec<usize> = t.iter().copied().collect();
            // Decoders may exceed S; process each support exactly once, at
            // the level equal to its true decoder count.
            let decoders: Vec<usize> = others
                .iter()
                .copied()
                .filter(|&i| tv.iter().all(|j| known_sets[i].contains(j)))
                .collect();
            if decoders.len() != g || seen_supports.contains(&tv) {
                continue;
            }
            seen_supports.insert(tv.clone());
            level.push((tv, decoders));
        }
        // Widest supports first: more Eve-unknown budget per row.
        level.sort_by_key(|(support, _)| std::cmp::Reverse(support.len()));
        for (support, decoders) in level {
            // Statistical safety: never allocate more rows on a support
            // than its estimated capacity minus the slack margin.
            let cap = match support_capacity(&support, &views, estimator.tuning().scale) {
                Some(c) => c.saturating_sub(params.support_slack),
                None => 0,
            };
            let mut used_here = 0usize;
            while used_here < cap {
                let any_deficient = decoders.iter().any(|&i| counts[i] < budgets[i]);
                if !any_deficient {
                    break;
                }
                if supports.len() >= params.max_rows {
                    break 'levels;
                }
                if !hall.try_add(&support) {
                    break;
                }
                supports.push(support.clone());
                used_here += 1;
                for &i in &decoders {
                    counts[i] += 1;
                }
            }
        }
    }

    // 4. Decodable sets from the final supports (incidental decodability
    //    included).
    let decodable: Vec<Vec<usize>> = (0..n)
        .map(|i| {
            supports
                .iter()
                .enumerate()
                .filter(|(_, s)| i == coordinator || s.iter().all(|j| known_sets[i].contains(j)))
                .map(|(r, _)| r)
                .collect()
        })
        .collect();
    let l = others.iter().map(|&i| decodable[i].len()).min().unwrap_or(0);
    if l == 0 {
        return Ok(Plan::empty(n_packets, coordinator, n));
    }
    let m = supports.len();

    // 5. Coefficients: random, verified, redrawn on bad luck.
    let mut w = Matrix::zero(0, n_packets);
    let mut rows: Vec<YRow> = Vec::new();
    let mut ok = false;
    for _ in 0..MAX_REDRAWS {
        rows.clear();
        w = Matrix::zero(0, n_packets);
        for support in &supports {
            let coeffs: Vec<Gf256> = loop {
                let c: Vec<Gf256> = (0..support.len()).map(|_| Gf256(rng.gen())).collect();
                if c.iter().any(|x| !x.is_zero()) {
                    break c;
                }
            };
            let row = YRow { support: support.clone(), coeffs };
            w.push_row(&row.dense(n_packets));
            rows.push(row);
        }
        if verify_coefficients(&w, &rows, &views) {
            ok = true;
            break;
        }
    }
    if !ok {
        return Err(ProtocolError::ConstructionFailed("could not draw full-rank y coefficients"));
    }

    // 6. The phase-2 matrices: an invertible M×M split into C (top M−L)
    //    and D (bottom L).
    let cd = build_cd(m, l, &decodable, &others, rng)?;
    let c_mat = cd.select_rows(&(0..m - l).collect::<Vec<_>>());
    let d_mat = cd.select_rows(&(m - l..m).collect::<Vec<_>>());

    Ok(Plan { n_packets, coordinator, rows, w, decodable, budgets, l, c_mat, d_mat })
}

/// Checks that the drawn coefficients realize the generic ranks the Hall
/// argument promises, for every candidate view we can express as a column
/// restriction. (Also used by the unicast baseline for its pad blocks.)
pub(crate) fn verify_coefficients(w: &Matrix, rows: &[YRow], views: &[EveView]) -> bool {
    if w.rows() > 0 && w.rank() < w.rows() {
        return false;
    }
    for view in views {
        if view.row_demand != 1 {
            continue; // fractional views have no single column set to test
        }
        let unknown_cols: Vec<usize> = (0..w.cols())
            .filter(|&j| view.miss_capacity.get(j).copied().unwrap_or(0) > 0)
            .collect();
        let active_rows: Vec<usize> = (0..rows.len())
            .filter(|&r| match &view.concede {
                Some(k) => !rows[r].support.iter().all(|j| k.contains(j)),
                None => true,
            })
            .collect();
        if active_rows.is_empty() {
            continue;
        }
        let sub = w.select_rows(&active_rows).select_columns(&unknown_cols);
        if sub.rank() < active_rows.len() {
            return false;
        }
    }
    true
}

/// Builds the invertible `[C; D]` matrix with the per-terminal decode
/// properties.
fn build_cd(
    m: usize,
    l: usize,
    decodable: &[Vec<usize>],
    others: &[usize],
    rng: &mut impl Rng,
) -> Result<Matrix, ProtocolError> {
    debug_assert!(l <= m);
    // Cauchy when it fits: superregularity gives every property without
    // sampling.
    if 2 * m <= 256 {
        let cd = cauchy_matrix(m, m).expect("2m <= 256 checked");
        debug_assert!(cd.inverse().is_some());
        return Ok(cd);
    }
    // Fallback: random with verification.
    for _ in 0..MAX_REDRAWS {
        let cd = Matrix::random(m, m, rng);
        if cd.inverse().is_none() {
            continue;
        }
        let c = cd.select_rows(&(0..m - l).collect::<Vec<_>>());
        let all_decode = others.iter().all(|&i| {
            let missing: Vec<usize> = (0..m).filter(|r| !decodable[i].contains(r)).collect();
            missing.is_empty() || c.select_columns(&missing).rank() == missing.len()
        });
        if all_decode {
            return Ok(cd);
        }
    }
    Err(ProtocolError::ConstructionFailed("could not build C/D matrices"))
}

/// The *naive* per-terminal construction the paper warns about in §3.1
/// ("not any linear combinations of x-packets will do"): one independent
/// Cauchy block per terminal over its shared set, no support sharing, no
/// Hall condition across blocks. Kept as an ablation — it can leak once
/// phase 2 publishes z-packets.
pub fn build_block_plan(
    known_sets: &[BTreeSet<usize>],
    coordinator: usize,
    n_packets: usize,
    estimator: &Estimator,
    rng: &mut impl Rng,
    max_rows: usize,
) -> Result<Plan, ProtocolError> {
    let n = known_sets.len();
    if n < 2 || coordinator >= n {
        return Err(ProtocolError::BadConfig("bad terminal layout"));
    }
    let others: Vec<usize> = (0..n).filter(|&i| i != coordinator).collect();
    let mut budgets = vec![0usize; n];
    let mut rows: Vec<YRow> = Vec::new();
    for &i in &others {
        let shared: Vec<usize> =
            known_sets[coordinator].intersection(&known_sets[i]).copied().collect();
        let shared_set: BTreeSet<usize> = shared.iter().copied().collect();
        let mi = estimator.pair_budget(&shared_set, known_sets, coordinator, i).min(shared.len());
        budgets[i] = mi;
        if mi == 0 {
            return Ok(Plan::empty(n_packets, coordinator, n));
        }
        for _ in 0..mi {
            if rows.len() >= max_rows {
                break;
            }
            let coeffs: Vec<Gf256> = (0..shared.len()).map(|_| Gf256(rng.gen())).collect();
            rows.push(YRow { support: shared.clone(), coeffs });
        }
    }
    let m = rows.len();
    let mut w = Matrix::zero(0, n_packets);
    for r in &rows {
        w.push_row(&r.dense(n_packets));
    }
    let decodable: Vec<Vec<usize>> = (0..n)
        .map(|i| {
            rows.iter()
                .enumerate()
                .filter(|(_, r)| {
                    i == coordinator || r.support.iter().all(|j| known_sets[i].contains(j))
                })
                .map(|(idx, _)| idx)
                .collect()
        })
        .collect();
    let l = others.iter().map(|&i| decodable[i].len()).min().unwrap_or(0);
    if l == 0 || m == 0 {
        return Ok(Plan::empty(n_packets, coordinator, n));
    }
    let cd = build_cd(m, l, &decodable, &others, rng)?;
    Ok(Plan {
        n_packets,
        coordinator,
        rows,
        w: w.clone(),
        decodable,
        budgets,
        l,
        c_mat: cd.select_rows(&(0..m - l).collect::<Vec<_>>()),
        d_mat: cd.select_rows(&(m - l..m).collect::<Vec<_>>()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::Tuning;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use thinair_gf::rank_increase;

    fn set(v: &[usize]) -> BTreeSet<usize> {
        v.iter().copied().collect()
    }

    /// Eve's knowledge matrix for a plan: unit rows on her received set
    /// plus the published z rows.
    fn eve_knowledge(plan: &Plan, eve_known: &BTreeSet<usize>) -> Matrix {
        let mut k = Matrix::zero(0, plan.n_packets);
        for &j in eve_known {
            let mut row = vec![Gf256::ZERO; plan.n_packets];
            row[j] = Gf256::ONE;
            k.push_row(&row);
        }
        k.vstack(&plan.z_rows_x())
    }

    fn measured_secret_dims(plan: &Plan, eve_known: &BTreeSet<usize>) -> usize {
        rank_increase(&eve_knowledge(plan, eve_known), &plan.secret_rows_x())
    }

    #[test]
    fn paper_three_terminal_example_shape() {
        // Alice = 0 knows 0..6; Bob knows {0,1,2,3}, Calvin {0,1,4,5}.
        // Intersection {0,1} should host shared rows (the paper's y1).
        let known = vec![set(&[0, 1, 2, 3, 4, 5]), set(&[0, 1, 2, 3]), set(&[0, 1, 4, 5])];
        let eve = set(&[]); // Eve heard nothing
        let est = Estimator::Oracle { eve_known: eve.clone() };
        let mut rng = StdRng::seed_from_u64(1);
        let plan = build_plan(
            &known,
            0,
            6,
            &est,
            &mut rng,
            PlanParams { max_rows: 32, ..PlanParams::exact() },
        )
        .unwrap();
        assert!(plan.l > 0);
        // Some row must be decodable by both Bob and Calvin.
        let both: Vec<usize> =
            plan.decodable[1].iter().filter(|r| plan.decodable[2].contains(r)).copied().collect();
        assert!(!both.is_empty(), "expected a shared y-row: {:?}", plan.rows);
        // Perfect secrecy (Eve heard nothing).
        assert_eq!(measured_secret_dims(&plan, &eve), plan.l);
    }

    #[test]
    fn oracle_plan_is_always_perfectly_secret() {
        // Randomized reception patterns; with the oracle estimator the
        // measured secrecy must equal L every time.
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..30 {
            let n_packets = 24;
            let n_terminals = 4;
            let mut known: Vec<BTreeSet<usize>> = Vec::new();
            // Terminal 0 (Alice) knows everything (she sent it).
            known.push((0..n_packets).collect());
            for _ in 1..n_terminals {
                known.push((0..n_packets).filter(|_| rng.gen_bool(0.6)).collect());
            }
            let eve: BTreeSet<usize> = (0..n_packets).filter(|_| rng.gen_bool(0.5)).collect();
            let est = Estimator::Oracle { eve_known: eve.clone() };
            let plan = build_plan(
                &known,
                0,
                n_packets,
                &est,
                &mut rng,
                PlanParams { max_rows: 64, ..PlanParams::exact() },
            )
            .unwrap();
            if plan.l == 0 {
                continue;
            }
            assert_eq!(
                measured_secret_dims(&plan, &eve),
                plan.l,
                "trial {trial}: leak with oracle estimator"
            );
        }
    }

    #[test]
    fn leave_one_out_protects_against_weak_eve_but_not_collocated_eve() {
        let mut rng = StdRng::seed_from_u64(11);
        let n_packets = 20;
        let known = vec![
            (0..n_packets).collect::<BTreeSet<_>>(),
            set(&[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]),
            set(&[5, 6, 7, 8, 9, 10, 11, 12, 13, 14]),
            set(&[0, 2, 4, 6, 8, 10, 12, 14, 16, 18]),
        ];
        let est = Estimator::LeaveOneOut(Tuning::default());
        let plan = build_plan(
            &known,
            0,
            n_packets,
            &est,
            &mut rng,
            PlanParams { max_rows: 64, ..PlanParams::exact() },
        )
        .unwrap();
        assert!(plan.l > 0);

        // A weak Eve (heard almost nothing): the construction keeps the
        // full secret uniform.
        let weak_eve = set(&[3, 11]);
        assert_eq!(measured_secret_dims(&plan, &weak_eve), plan.l);

        // An Eve collocated with terminal 3 (she heard exactly what T3
        // heard) decodes whatever T3 decodes, then reconstructs the rest
        // from the z-packets — no group-secret protocol can prevent this.
        // The measured reliability must expose the leak, not hide it.
        let collocated_eve = known[3].clone();
        assert!(
            measured_secret_dims(&plan, &collocated_eve) < plan.l,
            "a member-equivalent Eve must defeat the group secret"
        );
    }

    #[test]
    fn budget_zero_yields_empty_plan() {
        // Eve (oracle) heard everything: no secret is possible.
        let known = vec![set(&[0, 1, 2, 3]), set(&[0, 1, 2])];
        let est = Estimator::Oracle { eve_known: set(&[0, 1, 2, 3]) };
        let mut rng = StdRng::seed_from_u64(3);
        let plan = build_plan(
            &known,
            0,
            4,
            &est,
            &mut rng,
            PlanParams { max_rows: 16, ..PlanParams::exact() },
        )
        .unwrap();
        assert_eq!(plan.l, 0);
        assert!(plan.rows.is_empty());
    }

    #[test]
    fn decode_matrices_have_full_column_rank() {
        let mut rng = StdRng::seed_from_u64(13);
        let n_packets = 30;
        let known: Vec<BTreeSet<usize>> = vec![
            (0..n_packets).collect(),
            (0..n_packets).filter(|j| j % 2 == 0).collect(),
            (0..n_packets).filter(|j| j % 3 != 0).collect(),
            (0..n_packets).filter(|&j| j < 20).collect(),
        ];
        let est = Estimator::Oracle { eve_known: set(&[0, 3, 6, 9, 12]) };
        let plan = build_plan(
            &known,
            0,
            n_packets,
            &est,
            &mut rng,
            PlanParams { max_rows: 64, ..PlanParams::exact() },
        )
        .unwrap();
        assert!(plan.l > 0);
        let m = plan.m();
        for i in 1..4 {
            let missing: Vec<usize> = (0..m).filter(|r| !plan.decodable[i].contains(r)).collect();
            assert!(missing.len() <= m - plan.l, "terminal {i}");
            if !missing.is_empty() {
                assert_eq!(
                    plan.c_mat.select_columns(&missing).rank(),
                    missing.len(),
                    "terminal {i} cannot invert its z system"
                );
            }
        }
        // [C; D] invertible.
        let cd = plan.c_mat.vstack(&plan.d_mat);
        assert!(cd.inverse().is_some());
    }

    #[test]
    fn hall_ledger_respects_unit_capacities() {
        // Two packets of capacity, three rows on the same 2-packet
        // support: third must be rejected.
        let view = EveView { miss_capacity: vec![1, 1, 0, 0], row_demand: 1, concede: None };
        let mut hall = HallLedger::new(&[view]);
        assert!(hall.try_add(&[0, 1, 2]));
        assert!(hall.try_add(&[0, 1, 3]));
        assert!(!hall.try_add(&[0, 1]));
    }

    #[test]
    fn hall_ledger_uses_augmenting_paths() {
        // Row A fits on packet 0 or 1; row B only on 0. Add A (takes 0),
        // then B must displace A to packet 1.
        let view = EveView { miss_capacity: vec![1, 1], row_demand: 1, concede: None };
        let mut hall = HallLedger::new(&[view]);
        assert!(hall.try_add(&[0, 1]));
        assert!(hall.try_add(&[0]));
        // Both packets now saturated.
        assert!(!hall.try_add(&[0, 1]));
    }

    #[test]
    fn hall_ledger_concedes_contained_supports() {
        // Candidate view concedes rows inside {0,1}; a second
        // (oracle-like) view provides the actual secrecy evidence.
        let candidate =
            EveView { miss_capacity: vec![0, 0, 1], row_demand: 1, concede: Some(set(&[0, 1])) };
        let oracle = EveView { miss_capacity: vec![1, 1, 1], row_demand: 1, concede: None };
        let mut hall = HallLedger::new(&[candidate, oracle]);
        // Inside the candidate's knowledge: conceded there, matched in the
        // oracle view; consumes oracle capacity only.
        assert!(hall.try_add(&[0, 1]));
        assert!(hall.try_add(&[0, 1]));
        // Outside: needs capacity in both views.
        assert!(hall.try_add(&[1, 2]));
        assert!(!hall.try_add(&[1, 2]));
    }

    #[test]
    fn rows_conceded_by_every_view_are_rejected() {
        // Under the estimator's own hypotheses a row inside every
        // candidate's knowledge is compromised: it must not be admitted,
        // however "free" it looks.
        let v1 =
            EveView { miss_capacity: vec![0, 0, 1], row_demand: 1, concede: Some(set(&[0, 1])) };
        let v2 =
            EveView { miss_capacity: vec![0, 1, 0], row_demand: 1, concede: Some(set(&[0, 1, 2])) };
        let mut hall = HallLedger::new(&[v1, v2]);
        assert!(!hall.try_add(&[0, 1]));
        // And an empty view list rejects everything.
        let mut empty = HallLedger::new(&[]);
        assert!(!empty.try_add(&[0]));
    }

    #[test]
    fn hall_ledger_fractional_demand() {
        // fraction 1/2 with scale 16: each packet supplies 8 units, a row
        // needs 16 → a row needs at least 2 packets of support.
        let view = EveView { miss_capacity: vec![8, 8, 8, 8], row_demand: 16, concede: None };
        let mut hall = HallLedger::new(&[view]);
        assert!(!hall.try_add(&[0]));
        assert!(hall.try_add(&[0, 1]));
        assert!(hall.try_add(&[2, 3]));
        assert!(!hall.try_add(&[0, 1, 2, 3]));
    }

    #[test]
    fn rollback_on_multi_view_failure_is_clean() {
        // View 1 admits the row, view 2 rejects it: view 1 must roll back
        // so a subsequent feasible row still fits.
        let v1 = EveView { miss_capacity: vec![1, 0], row_demand: 1, concede: None };
        let v2 = EveView { miss_capacity: vec![0, 0], row_demand: 1, concede: None };
        let mut hall = HallLedger::new(&[v1.clone(), v2]);
        assert!(!hall.try_add(&[0]));
        // Replace second view by a permissive one and verify capacity in
        // view 1 was not consumed by the failed attempt.
        let v2b = EveView { miss_capacity: vec![1, 1], row_demand: 1, concede: None };
        let mut hall = HallLedger::new(&[v1, v2b]);
        assert!(hall.try_add(&[0]));
        assert!(!hall.try_add(&[0]));
    }

    #[test]
    fn block_construction_can_leak_where_aligned_does_not() {
        // Overlapping receptions with a *tight* Eve: the naive per-terminal
        // blocks spend more rows than Eve's unknown budget, so publishing
        // z-packets reveals part of the secret; the aligned construction
        // shares supports and stays within budget.
        let mut rng = StdRng::seed_from_u64(17);
        let n_packets = 12;
        let known = vec![
            (0..n_packets).collect::<BTreeSet<_>>(),
            set(&[0, 1, 2, 3, 4, 5, 6, 7]),
            set(&[0, 1, 2, 3, 4, 5, 6, 7]),
            set(&[0, 1, 2, 3, 4, 5, 6, 7]),
        ];
        // Eve misses exactly {0, 1, 2} of the shared packets.
        let eve: BTreeSet<usize> = (3..n_packets).collect();
        let est = Estimator::Oracle { eve_known: eve.clone() };

        let aligned = build_plan(
            &known,
            0,
            n_packets,
            &est,
            &mut rng,
            PlanParams { max_rows: 64, ..PlanParams::exact() },
        )
        .unwrap();
        assert!(aligned.l > 0);
        assert_eq!(measured_secret_dims(&aligned, &eve), aligned.l);

        let block = build_block_plan(&known, 0, n_packets, &est, &mut rng, 64).unwrap();
        assert!(block.l > 0);
        // 3 terminals × 3 rows = 9 rows but Eve misses only 3 packets:
        // rank(W|U) <= 3 < M, so z-packets leak.
        let dims = measured_secret_dims(&block, &eve);
        assert!(dims < block.l, "naive construction unexpectedly secret: {dims} of {}", block.l);
    }

    #[test]
    fn bad_configs_are_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let est = Estimator::Oracle { eve_known: set(&[]) };
        assert!(matches!(
            build_plan(&[set(&[0])], 0, 2, &est, &mut rng, PlanParams::exact()),
            Err(ProtocolError::BadConfig(_))
        ));
        assert!(matches!(
            build_plan(&[set(&[0]), set(&[0])], 5, 2, &est, &mut rng, PlanParams::exact()),
            Err(ProtocolError::BadConfig(_))
        ));
    }

    #[test]
    fn max_rows_is_respected() {
        let mut rng = StdRng::seed_from_u64(5);
        let n_packets = 40;
        let known: Vec<BTreeSet<usize>> =
            vec![(0..n_packets).collect(), (0..30).collect(), (10..40).collect()];
        let est = Estimator::Oracle { eve_known: set(&[]) };
        let plan = build_plan(
            &known,
            0,
            n_packets,
            &est,
            &mut rng,
            PlanParams { max_rows: 7, ..PlanParams::exact() },
        )
        .unwrap();
        assert!(plan.m() <= 7, "m = {}", plan.m());
    }

    #[test]
    fn dense_row_roundtrip() {
        let r = YRow { support: vec![1, 3], coeffs: vec![Gf256(7), Gf256(9)] };
        let d = r.dense(5);
        assert_eq!(d, vec![Gf256(0), Gf256(7), Gf256(0), Gf256(9), Gf256(0)]);
    }
}
