//! Binary wire format for protocol messages.
//!
//! The efficiency metric of the paper divides secret bits by *all* bits the
//! terminals put on the air, so control messages must have a concrete,
//! honest encoding — a hand-rolled length-prefixed binary format on
//! `bytes::{Buf, BufMut}` (the explicit-framing style the networking
//! guides recommend), not an abstract "assume this is free" hand-wave.
//!
//! Layout: every message starts with a one-byte tag followed by
//! fixed-order fields; multi-byte integers are big-endian. Payload symbols
//! are raw bytes (a `Gf256` is its byte).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use thinair_gf::Gf256;

use crate::packet::Payload;

/// A y/z/s coefficient row in sparse form: positions into the x-pool plus
/// one coefficient per position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SparseRow {
    /// Sorted x-packet indices this row combines.
    pub support: Vec<u16>,
    /// Coefficients, parallel to `support`.
    pub coeffs: Vec<u8>,
}

/// Protocol messages, as put on the air.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Message {
    /// Phase 1 step 1: a raw x-packet (plain broadcast, *not* reliable).
    XPacket {
        /// Dense index of the packet within the round.
        id: u16,
        /// Terminal that generated it (role rotation).
        owner: u8,
        /// The random payload.
        payload: Vec<u8>,
    },
    /// Phase 1 step 2: which x-packets a terminal received (reliable).
    ReceptionReport {
        /// Reporting terminal.
        terminal: u8,
        /// Number of x-packets in the round (bitmap length in bits).
        n_packets: u16,
        /// Bit `j` (LSB-first within each byte) set iff packet `j` was
        /// received.
        bitmap: Vec<u8>,
    },
    /// Phase 1 step 3: coefficient vectors of the y-packets (reliable;
    /// identities only, never contents).
    YAnnounce {
        /// One sparse row per y-packet.
        rows: Vec<SparseRow>,
    },
    /// Phase 2 step 1: a z-packet — coefficients over the y-packets *and*
    /// the combined contents (reliable).
    ZPacket {
        /// Index of this z-packet.
        index: u16,
        /// Dense coefficients over the M y-packets.
        coeffs: Vec<u8>,
        /// The z-packet contents.
        payload: Vec<u8>,
    },
    /// Phase 2 step 3: coefficient vectors of the s-packets (reliable;
    /// identities only).
    SAnnounce {
        /// One dense coefficient row over the y-packets per s-packet.
        rows: Vec<Vec<u8>>,
    },
    /// Unicast baseline: the group secret XOR-padded with terminal
    /// `terminal`'s pairwise secret (reliable broadcast; only `terminal`
    /// can strip the pad).
    PadDelivery {
        /// Which terminal this pad targets.
        terminal: u8,
        /// One padded payload per group-secret packet.
        payloads: Vec<Vec<u8>>,
    },
    /// Phase 1 step 3 + phase 2 step 3, compressed: the y/z/s plan is a
    /// deterministic function of the reception reports (which every
    /// terminal holds) and a seed, so the coordinator only announces the
    /// seed plus the resulting (M, L) — the "identities" of the paper,
    /// in their information-equivalent minimal form.
    PlanAnnounce {
        /// Seed from which the construction's coefficients are derived.
        seed: u64,
        /// Number of y-packets the plan produced.
        m: u16,
        /// Group-secret length.
        l: u16,
    },
    /// An authenticated envelope: an inner message plus an HMAC-SHA256 tag
    /// keyed with the bootstrap secret (active-adversary defence; see
    /// `crate::auth`).
    Authenticated {
        /// Serialized inner message.
        inner: Vec<u8>,
        /// HMAC-SHA256 over `inner`.
        tag: [u8; 32],
    },
}

/// Wire decoding failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the message did.
    Truncated,
    /// Unknown message tag byte.
    UnknownTag(u8),
    /// A declared length is inconsistent (e.g. coeffs vs support).
    BadLength,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::UnknownTag(t) => write!(f, "unknown message tag {t:#04x}"),
            WireError::BadLength => write!(f, "inconsistent length field"),
        }
    }
}

impl std::error::Error for WireError {}

const TAG_X: u8 = 0x01;
const TAG_REPORT: u8 = 0x02;
const TAG_Y: u8 = 0x03;
const TAG_Z: u8 = 0x04;
const TAG_S: u8 = 0x05;
const TAG_PAD: u8 = 0x06;
const TAG_AUTH: u8 = 0x07;
const TAG_PLAN: u8 = 0x08;

impl Message {
    /// Serializes the message.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::new();
        match self {
            Message::XPacket { id, owner, payload } => {
                b.put_u8(TAG_X);
                b.put_u16(*id);
                b.put_u8(*owner);
                b.put_u16(payload.len() as u16);
                b.put_slice(payload);
            }
            Message::ReceptionReport { terminal, n_packets, bitmap } => {
                b.put_u8(TAG_REPORT);
                b.put_u8(*terminal);
                b.put_u16(*n_packets);
                b.put_slice(bitmap);
            }
            Message::YAnnounce { rows } => {
                b.put_u8(TAG_Y);
                b.put_u16(rows.len() as u16);
                for row in rows {
                    b.put_u16(row.support.len() as u16);
                    for &s in &row.support {
                        b.put_u16(s);
                    }
                    b.put_slice(&row.coeffs);
                }
            }
            Message::ZPacket { index, coeffs, payload } => {
                b.put_u8(TAG_Z);
                b.put_u16(*index);
                b.put_u16(coeffs.len() as u16);
                b.put_slice(coeffs);
                b.put_u16(payload.len() as u16);
                b.put_slice(payload);
            }
            Message::SAnnounce { rows } => {
                b.put_u8(TAG_S);
                b.put_u16(rows.len() as u16);
                if let Some(first) = rows.first() {
                    b.put_u16(first.len() as u16);
                } else {
                    b.put_u16(0);
                }
                for row in rows {
                    b.put_slice(row);
                }
            }
            Message::PadDelivery { terminal, payloads } => {
                b.put_u8(TAG_PAD);
                b.put_u8(*terminal);
                b.put_u16(payloads.len() as u16);
                if let Some(first) = payloads.first() {
                    b.put_u16(first.len() as u16);
                } else {
                    b.put_u16(0);
                }
                for p in payloads {
                    b.put_slice(p);
                }
            }
            Message::PlanAnnounce { seed, m, l } => {
                b.put_u8(TAG_PLAN);
                b.put_u64(*seed);
                b.put_u16(*m);
                b.put_u16(*l);
            }
            Message::Authenticated { inner, tag } => {
                b.put_u8(TAG_AUTH);
                b.put_u32(inner.len() as u32);
                b.put_slice(inner);
                b.put_slice(tag);
            }
        }
        b.freeze()
    }

    /// Size of the encoded message in bits (for air-time accounting).
    pub fn bits(&self) -> u64 {
        (self.encode().len() * 8) as u64
    }

    /// Parses a message, consuming the buffer.
    pub fn decode(mut buf: &[u8]) -> Result<Message, WireError> {
        fn need(buf: &[u8], n: usize) -> Result<(), WireError> {
            if buf.remaining() < n {
                Err(WireError::Truncated)
            } else {
                Ok(())
            }
        }
        need(buf, 1)?;
        let tag = buf.get_u8();
        match tag {
            TAG_X => {
                need(buf, 5)?;
                let id = buf.get_u16();
                let owner = buf.get_u8();
                let len = buf.get_u16() as usize;
                need(buf, len)?;
                let payload = buf[..len].to_vec();
                Ok(Message::XPacket { id, owner, payload })
            }
            TAG_REPORT => {
                need(buf, 3)?;
                let terminal = buf.get_u8();
                let n_packets = buf.get_u16();
                let want = (n_packets as usize).div_ceil(8);
                need(buf, want)?;
                let bitmap = buf[..want].to_vec();
                Ok(Message::ReceptionReport { terminal, n_packets, bitmap })
            }
            TAG_Y => {
                need(buf, 2)?;
                let n_rows = buf.get_u16() as usize;
                let mut rows = Vec::with_capacity(n_rows);
                for _ in 0..n_rows {
                    need(buf, 2)?;
                    let slen = buf.get_u16() as usize;
                    need(buf, slen * 2)?;
                    let mut support = Vec::with_capacity(slen);
                    for _ in 0..slen {
                        support.push(buf.get_u16());
                    }
                    need(buf, slen)?;
                    let coeffs = buf[..slen].to_vec();
                    buf.advance(slen);
                    rows.push(SparseRow { support, coeffs });
                }
                Ok(Message::YAnnounce { rows })
            }
            TAG_Z => {
                need(buf, 4)?;
                let index = buf.get_u16();
                let clen = buf.get_u16() as usize;
                need(buf, clen)?;
                let coeffs = buf[..clen].to_vec();
                buf.advance(clen);
                need(buf, 2)?;
                let plen = buf.get_u16() as usize;
                need(buf, plen)?;
                let payload = buf[..plen].to_vec();
                Ok(Message::ZPacket { index, coeffs, payload })
            }
            TAG_S => {
                need(buf, 4)?;
                let n_rows = buf.get_u16() as usize;
                let width = buf.get_u16() as usize;
                let mut rows = Vec::with_capacity(n_rows);
                for _ in 0..n_rows {
                    need(buf, width)?;
                    rows.push(buf[..width].to_vec());
                    buf.advance(width);
                }
                Ok(Message::SAnnounce { rows })
            }
            TAG_PAD => {
                need(buf, 5)?;
                let terminal = buf.get_u8();
                let n = buf.get_u16() as usize;
                let width = buf.get_u16() as usize;
                let mut payloads = Vec::with_capacity(n);
                for _ in 0..n {
                    need(buf, width)?;
                    payloads.push(buf[..width].to_vec());
                    buf.advance(width);
                }
                Ok(Message::PadDelivery { terminal, payloads })
            }
            TAG_PLAN => {
                need(buf, 12)?;
                let seed = buf.get_u64();
                let m = buf.get_u16();
                let l = buf.get_u16();
                Ok(Message::PlanAnnounce { seed, m, l })
            }
            TAG_AUTH => {
                need(buf, 4)?;
                let len = buf.get_u32() as usize;
                need(buf, len + 32)?;
                let inner = buf[..len].to_vec();
                buf.advance(len);
                let mut tag_bytes = [0u8; 32];
                tag_bytes.copy_from_slice(&buf[..32]);
                Ok(Message::Authenticated { inner, tag: tag_bytes })
            }
            other => Err(WireError::UnknownTag(other)),
        }
    }
}

/// Builds a reception bitmap from a received-set iterator.
pub fn bitmap_from_received(n_packets: usize, received: impl Iterator<Item = usize>) -> Vec<u8> {
    let mut bm = vec![0u8; n_packets.div_ceil(8)];
    for j in received {
        debug_assert!(j < n_packets);
        bm[j / 8] |= 1 << (j % 8);
    }
    bm
}

/// Expands a reception bitmap back into indices.
pub fn received_from_bitmap(n_packets: usize, bitmap: &[u8]) -> Vec<usize> {
    (0..n_packets).filter(|&j| bitmap.get(j / 8).is_some_and(|b| b & (1 << (j % 8)) != 0)).collect()
}

/// Converts a `Gf256` payload to wire bytes.
pub fn payload_to_bytes(p: &Payload) -> Vec<u8> {
    p.iter().map(|s| s.value()).collect()
}

/// Converts wire bytes to a `Gf256` payload.
pub fn bytes_to_payload(b: &[u8]) -> Payload {
    b.iter().copied().map(Gf256).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(m: Message) {
        let enc = m.encode();
        assert_eq!(m.bits(), (enc.len() * 8) as u64);
        let dec = Message::decode(&enc).unwrap();
        assert_eq!(dec, m);
    }

    #[test]
    fn x_packet_round_trip() {
        round_trip(Message::XPacket { id: 512, owner: 3, payload: vec![1, 2, 3, 255] });
        round_trip(Message::XPacket { id: 0, owner: 0, payload: vec![] });
    }

    #[test]
    fn report_round_trip() {
        let bitmap = bitmap_from_received(12, [0usize, 3, 11].into_iter());
        round_trip(Message::ReceptionReport { terminal: 5, n_packets: 12, bitmap });
    }

    #[test]
    fn y_announce_round_trip() {
        round_trip(Message::YAnnounce {
            rows: vec![
                SparseRow { support: vec![0, 5, 9], coeffs: vec![1, 7, 255] },
                SparseRow { support: vec![2], coeffs: vec![3] },
                SparseRow { support: vec![], coeffs: vec![] },
            ],
        });
    }

    #[test]
    fn z_packet_round_trip() {
        round_trip(Message::ZPacket { index: 2, coeffs: vec![9, 8, 7], payload: vec![0; 100] });
    }

    #[test]
    fn s_announce_round_trip() {
        round_trip(Message::SAnnounce { rows: vec![vec![1, 2, 3], vec![4, 5, 6]] });
        round_trip(Message::SAnnounce { rows: vec![] });
    }

    #[test]
    fn pad_delivery_round_trip() {
        round_trip(Message::PadDelivery {
            terminal: 4,
            payloads: vec![vec![1; 100], vec![2; 100]],
        });
    }

    #[test]
    fn plan_announce_round_trip() {
        round_trip(Message::PlanAnnounce { seed: u64::MAX, m: 120, l: 7 });
        // Fixed size: 1 + 8 + 2 + 2 bytes.
        assert_eq!(Message::PlanAnnounce { seed: 1, m: 2, l: 3 }.bits(), 13 * 8);
    }

    #[test]
    fn authenticated_round_trip() {
        round_trip(Message::Authenticated { inner: vec![1, 2, 3], tag: [9; 32] });
    }

    #[test]
    fn truncated_inputs_error_not_panic() {
        // Truncate every prefix of a valid message: must error, not panic.
        let m = Message::YAnnounce {
            rows: vec![SparseRow { support: vec![0, 1], coeffs: vec![5, 6] }],
        };
        let enc = m.encode();
        for cut in 0..enc.len() {
            let r = Message::decode(&enc[..cut]);
            assert!(r.is_err(), "prefix of length {cut} must not parse");
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        assert_eq!(Message::decode(&[0xEE]), Err(WireError::UnknownTag(0xEE)));
        assert_eq!(Message::decode(&[]), Err(WireError::Truncated));
    }

    #[test]
    fn bitmap_round_trip() {
        let received = vec![0, 1, 7, 8, 15, 16, 63];
        let bm = bitmap_from_received(64, received.iter().copied());
        assert_eq!(received_from_bitmap(64, &bm), received);
        // Empty set.
        let bm = bitmap_from_received(10, std::iter::empty());
        assert!(received_from_bitmap(10, &bm).is_empty());
    }

    #[test]
    fn report_bits_scale_with_packet_count() {
        let small = Message::ReceptionReport { terminal: 0, n_packets: 8, bitmap: vec![0xFF] };
        let big = Message::ReceptionReport { terminal: 0, n_packets: 800, bitmap: vec![0; 100] };
        assert!(big.bits() > small.bits());
        // 800-packet report: 1 tag + 1 terminal + 2 count + 100 bitmap.
        assert_eq!(big.bits(), 104 * 8);
    }

    #[test]
    fn payload_byte_conversions() {
        let p = vec![Gf256(0), Gf256(17), Gf256(255)];
        assert_eq!(bytes_to_payload(&payload_to_bytes(&p)), p);
    }
}
