//! Phase 1 step 3–4 and phase 2: y/z/s announcement, reconciliation and
//! the group secret.
//!
//! The coordinator has a [`Plan`] (from [`crate::construct`]) and the
//! ground-truth x-pool. She:
//!
//! 1. reliably broadcasts the y-rows' *identities* (supports +
//!    coefficients, no contents) — paper phase 1 step 3;
//! 2. reliably broadcasts the `M−L` z-packets *with contents* — phase 2
//!    step 1 (Eve is conservatively assumed to receive these; her ledger
//!    records the corresponding x-space rows);
//! 3. reliably broadcasts the s-rows' identities — phase 2 step 3.
//!
//! Every terminal then reconstructs: the y-packets it can compute directly
//! (support ⊆ its known set), the missing ones by solving the z system,
//! and finally the s-packets — the group secret.

use thinair_gf::{kernel, Gf256, PayloadPlane};
use thinair_netsim::stats::TxClass;
use thinair_netsim::{Medium, TxStats};

use crate::transport::reliable_message;

use crate::construct::Plan;
use crate::error::ProtocolError;
use crate::eve::EveLedger;
use crate::packet::Payload;
use crate::phase1::XPool;
use crate::wire::Message;

/// What phase 2 produced.
#[derive(Clone, Debug)]
pub struct Phase2Output {
    /// Ground-truth y payloads (coordinator side).
    pub y_payloads: Vec<Payload>,
    /// The group secret as each terminal computed it (index = terminal).
    pub secrets: Vec<Vec<Payload>>,
}

impl Phase2Output {
    /// True iff every terminal derived the identical group secret.
    pub fn all_agree(&self) -> bool {
        self.secrets.windows(2).all(|w| w[0] == w[1])
    }
}

/// Runs announcement, reconciliation and extraction for a built plan.
///
/// `medium` nodes `0..n_terminals` are terminals; `eve` records the
/// published z rows (contents reach her by the paper's conservative
/// assumption, so her channel is irrelevant here).
pub fn run_phase2(
    mut medium: impl Medium,
    stats: &mut TxStats,
    eve: &mut EveLedger,
    plan: &Plan,
    pool: &XPool,
    max_attempts: u32,
) -> Result<Phase2Output, ProtocolError> {
    let n_terminals = pool.known.len();
    let coordinator = plan.coordinator;
    let m = plan.m();
    let _l = plan.l;
    let targets: Vec<usize> = (0..n_terminals).filter(|&t| t != coordinator).collect();

    // Ground-truth y payloads (the coordinator can compute them all: every
    // support is inside her known set), one contiguous plane row per y.
    let mut y_plane = PayloadPlane::zero(plan.rows.len(), pool.payload_len);
    for (r, row) in plan.rows.iter().enumerate() {
        let acc = y_plane.row_mut(r);
        for (&j, &c) in row.support.iter().zip(row.coeffs.iter()) {
            kernel::axpy(acc, pool.payloads.row(j), c.value());
        }
    }

    // 1. Plan announcement. The construction is a deterministic function
    // of the reception reports (now shared by all) and a seed, so the
    // "identities of the x-packets she used" (paper, phase 1 step 3 and
    // phase 2 step 3) compress to the seed plus (M, L).
    let plan_msg = Message::PlanAnnounce {
        seed: 0, // simulated terminals share the Plan object; bits are what matter
        m: plan.m() as u16,
        l: plan.l as u16,
    };
    reliable_message(
        &mut medium,
        stats,
        coordinator,
        plan_msg.bits(),
        &targets,
        TxClass::Control,
        max_attempts,
    )?;

    // 2. z distribution, fountain-style. Any vector in the z row space is
    // as good as any other for reconciliation, so instead of pushing each
    // of the `M − L` z-packets to each terminal (coupon-collector
    // endgame), the coordinator broadcasts *random linear combinations*
    // of the z-packets. Every reception is innovative for every
    // still-needy terminal with overwhelming probability, so the number
    // of transmissions tracks the worst single terminal's demand. The
    // combination coefficients ride in the packet. Secrecy is untouched:
    // every combo lies in the span of the `C·W` rows that Eve is already
    // conservatively assumed to know in full (paper §2).
    let z_plane = plan.c_mat.mul_plane(&y_plane);
    let z_rows_x = plan.z_rows_x();
    let z_count = z_plane.rows();
    for k in 0..z_count {
        eve.note_public_row(z_rows_x.row(k));
    }
    // Per-terminal solvability tracking: terminal t is done when the
    // collected combos, projected onto its missing y-columns, reach full
    // rank.
    let missing_rows: Vec<Vec<usize>> = (0..n_terminals)
        .map(|t| {
            if t == coordinator {
                Vec::new()
            } else {
                (0..m).filter(|r| !plan.decodable[t].contains(r)).collect()
            }
        })
        .collect();
    let mut trackers: Vec<thinair_gf::RowEchelon> =
        missing_rows.iter().map(|mr| thinair_gf::RowEchelon::new(mr.len())).collect();
    let mut collected: Vec<Vec<(Vec<Gf256>, Vec<u8>)>> = vec![Vec::new(); n_terminals];
    let mut seq = 0u64;
    let mut attempts = 0u32;
    // Deterministic combo coefficients from a per-round counter (the
    // receiver reads them from the packet; we derive them reproducibly).
    let combo_coeff = |seq: u64, k: usize| -> Gf256 {
        // Small multiplicative hash onto GF(256); quality is irrelevant,
        // only genericity, which the rank tracker verifies per receiver.
        let h = (seq.wrapping_mul(0x9E3779B97F4A7C15)
            ^ (k as u64).wrapping_mul(0xC2B2AE3D27D4EB4F))
        .wrapping_mul(0xD6E8FEB86659FD93);
        Gf256((h >> 56) as u8)
    };
    while z_count > 0 && (0..n_terminals).any(|t| trackers[t].rank() < missing_rows[t].len()) {
        if attempts >= max_attempts {
            let mut missing: Vec<usize> =
                (0..n_terminals).filter(|&t| trackers[t].rank() < missing_rows[t].len()).collect();
            missing.sort_unstable();
            return Err(ProtocolError::Reliable(thinair_netsim::ReliableError::Unreachable {
                missing,
                attempts,
            }));
        }
        attempts += 1;
        let q: Vec<Gf256> = (0..z_count).map(|k| combo_coeff(seq, k)).collect();
        let payload = {
            let mut acc = vec![0u8; pool.payload_len];
            for (k, &qk) in q.iter().enumerate() {
                kernel::axpy(&mut acc, z_plane.row(k), qk.value());
            }
            acc
        };
        let msg = Message::ZPacket {
            index: seq as u16,
            coeffs: q.iter().map(|c| c.value()).collect(),
            payload: payload.clone(),
        };
        let bits = msg.bits();
        let delivery = medium.transmit(coordinator, bits);
        stats.record(coordinator, TxClass::Control, bits);
        let mut progress = false;
        for t in 0..n_terminals {
            if t == coordinator || !delivery.got(t) {
                continue;
            }
            if trackers[t].rank() >= missing_rows[t].len() {
                continue;
            }
            // Projection of q·C onto this terminal's missing columns.
            let qc: Vec<Gf256> = missing_rows[t]
                .iter()
                .map(|&col| (0..z_count).map(|k| q[k] * plan.c_mat[(k, col)]).sum::<Gf256>())
                .collect();
            if trackers[t].insert(&qc) {
                progress = true;
                collected[t].push((q.clone(), payload.clone()));
            }
        }
        if !progress {
            // Nobody needy reached anything new: likely a jammed slot.
            medium.tick();
        }
        seq += 1;
    }
    // One completion block-ACK per terminal for the z phase.
    for &t in &targets {
        stats.record(t, TxClass::Ack, thinair_netsim::ACK_BITS);
    }

    // 3. s identities: already pinned by the plan announcement — with the
    // canonical Cauchy split, rows M−L..M of the [C;D] matrix are the
    // s-rows. Nothing further goes on the air.

    // 4. Every terminal reconstructs from the combos it collected.
    let mut secrets: Vec<Vec<Payload>> = Vec::with_capacity(n_terminals);
    for (t, combos) in collected.iter().enumerate() {
        let secret_plane = if t == coordinator {
            plan.d_mat.mul_plane(&y_plane)
        } else {
            let y_full = reconstruct_y(plan, pool, t, combos)?;
            plan.d_mat.mul_plane(&y_full)
        };
        secrets.push(secret_plane.to_payloads());
    }

    Ok(Phase2Output { y_payloads: y_plane.to_payloads(), secrets })
}

/// A terminal's y reconstruction: direct rows from its known x-packets,
/// the rest by solving the system given by the fountain combos it
/// collected (`(coeffs over z-space, payload)` pairs).
fn reconstruct_y(
    plan: &Plan,
    pool: &XPool,
    terminal: usize,
    combos: &[(Vec<Gf256>, Vec<u8>)],
) -> Result<PayloadPlane, ProtocolError> {
    let m = plan.m();
    let mut y = PayloadPlane::zero(m, pool.payload_len);
    let mut have = vec![false; m];
    // Direct rows.
    for &r in &plan.decodable[terminal] {
        let row = &plan.rows[r];
        debug_assert!(row.support.iter().all(|j| pool.known[terminal].contains(j)));
        let acc = y.row_mut(r);
        for (&j, &c) in row.support.iter().zip(row.coeffs.iter()) {
            kernel::axpy(acc, pool.payloads.row(j), c.value());
        }
        have[r] = true;
    }
    let missing: Vec<usize> = (0..m).filter(|r| !have[*r]).collect();
    if !missing.is_empty() {
        if combos.len() < missing.len() {
            return Err(ProtocolError::DecodeFailed {
                terminal,
                what: "not enough z combos received",
            });
        }
        let z_count = plan.c_mat.rows();
        // Coefficient rows of the received combos over y-space: q·C.
        let mut a = thinair_gf::Matrix::zero(0, missing.len());
        let mut rhs = PayloadPlane::with_capacity(combos.len(), pool.payload_len);
        for (q, payload) in combos {
            let row: Vec<Gf256> = missing
                .iter()
                .map(|&col| (0..z_count).map(|k| q[k] * plan.c_mat[(k, col)]).sum::<Gf256>())
                .collect();
            a.push_row(&row);
            // rhs = payload - sum over known y's of (q·C)[j]·y_j.
            let mut acc = payload.clone();
            for (j, &have_j) in have.iter().enumerate() {
                if have_j {
                    let qc_j: Gf256 = (0..z_count).map(|k| q[k] * plan.c_mat[(k, j)]).sum();
                    kernel::axpy(&mut acc, y.row(j), qc_j.value());
                }
            }
            rhs.push_row(&acc);
        }
        let solved = a
            .solve_plane(&rhs)
            .ok_or(ProtocolError::DecodeFailed { terminal, what: "y-packets from z system" })?;
        for (pos, &r) in missing.iter().enumerate() {
            y.row_mut(r).copy_from_slice(solved.row(pos));
        }
    }
    Ok(y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::{build_plan, PlanParams};
    use crate::estimate::Estimator;
    use crate::eve::EveLedger;
    use crate::phase1::{run_phase1, Phase1Config};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use thinair_netsim::IidMedium;

    /// End-to-end phase1 + construction + phase2 over an iid medium.
    fn run_once(
        n_terminals: usize,
        p: f64,
        n_packets: usize,
        seed: u64,
    ) -> (Plan, Phase2Output, EveLedger) {
        let mut medium = IidMedium::symmetric(n_terminals + 1, p, seed);
        let mut stats = TxStats::new(n_terminals + 1);
        let mut eve = EveLedger::new(n_packets);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        let cfg = Phase1Config {
            x_per_terminal: {
                let mut v = vec![0; n_terminals];
                v[0] = n_packets;
                v
            },
            payload_len: 16,
            max_attempts: 100_000,
        };
        let pool =
            run_phase1(&mut medium, &mut stats, &mut eve, &cfg, n_terminals, 0, &mut rng).unwrap();
        let est = Estimator::Oracle { eve_known: eve.received().clone() };
        let plan = build_plan(
            &pool.known,
            0,
            n_packets,
            &est,
            &mut rng,
            PlanParams { max_rows: 64, ..PlanParams::exact() },
        )
        .unwrap();
        let out = run_phase2(&mut medium, &mut stats, &mut eve, &plan, &pool, 100_000).unwrap();
        (plan, out, eve)
    }

    #[test]
    fn all_terminals_agree_on_the_secret() {
        for seed in 0..5 {
            let (plan, out, _) = run_once(4, 0.4, 30, seed);
            if plan.l == 0 {
                continue;
            }
            assert!(out.all_agree(), "seed {seed}");
            assert_eq!(out.secrets[0].len(), plan.l);
        }
    }

    #[test]
    fn oracle_estimator_yields_perfect_reliability() {
        let mut nonzero = 0;
        for seed in 10..20 {
            let (plan, _, eve) = run_once(3, 0.5, 40, seed);
            if plan.l == 0 {
                continue;
            }
            nonzero += 1;
            let r = eve.reliability(&plan.secret_rows_x());
            assert!((r - 1.0).abs() < 1e-12, "seed {seed}: reliability {r} with oracle estimator");
        }
        assert!(nonzero >= 5, "too few successful rounds to be meaningful");
    }

    #[test]
    fn secret_matches_coordinator_ground_truth() {
        let (plan, out, _) = run_once(3, 0.3, 24, 42);
        if plan.l == 0 {
            return;
        }
        // Recompute the secret directly from x payloads via D*W.
        let s_rows = plan.secret_rows_x();
        for (r, secret_pkt) in out.secrets[0].iter().enumerate() {
            let mut acc = vec![Gf256::ZERO; 16];
            for j in 0..plan.n_packets {
                // pool payloads not available here; compare via terminals
                // agreeing instead — checked elsewhere. Here check shape.
                let _ = j;
            }
            let _ = (r, secret_pkt, &mut acc, &s_rows);
        }
        assert_eq!(out.secrets.len(), 3);
    }

    #[test]
    fn eve_ledger_accumulates_z_rows() {
        let (plan, _, eve) = run_once(4, 0.45, 32, 77);
        if plan.m() == plan.l {
            return; // no z-packets this time
        }
        // Eve's rank must be at least the number of independent z rows
        // beyond her received x's — at minimum her knowledge is non-trivial.
        assert!(eve.knowledge_rank() >= plan.m() - plan.l);
    }
}
