//! Packet payloads and identities.
//!
//! Terminals exchange fixed-size payloads ("100-byte packets at 1 Mbps" in
//! the paper's deployment). A payload is a vector of GF(2^8) symbols —
//! one symbol per byte — so all coding operations act symbol-wise across
//! the payload.

use rand::Rng;
use thinair_gf::Gf256;

/// Payload size used throughout the paper's experiments: 100 bytes, i.e.
/// 800 bits ("each packet consists of 800 bits").
pub const PACKET_LEN: usize = 100;

/// Payload size in bits.
pub const PACKET_BITS: u64 = (PACKET_LEN * 8) as u64;

/// A packet payload: `PACKET_LEN` field symbols (but the protocol code is
/// generic over the actual length; only the defaults use 100 bytes).
pub type Payload = Vec<Gf256>;

/// Index of an x-packet within a round (dense, assigned in transmission
/// order).
pub type XId = usize;

/// Draws a uniformly random payload of the given length.
pub fn random_payload(len: usize, rng: &mut impl Rng) -> Payload {
    (0..len).map(|_| Gf256(rng.gen())).collect()
}

/// Byte form of [`random_payload`]: identical draw sequence, no symbol
/// wrapper — for code paths that store payloads as raw byte rows.
pub fn random_payload_bytes(len: usize, rng: &mut impl Rng) -> Vec<u8> {
    (0..len).map(|_| rng.gen::<u8>()).collect()
}

/// XORs two payloads elementwise (GF(2^8) addition), returning a new one.
///
/// # Panics
/// Panics when lengths differ.
pub fn xor_payloads(a: &Payload, b: &Payload) -> Payload {
    assert_eq!(a.len(), b.len(), "payload length mismatch");
    a.iter().zip(b.iter()).map(|(&x, &y)| x + y).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_constants() {
        assert_eq!(PACKET_LEN, 100);
        assert_eq!(PACKET_BITS, 800);
    }

    #[test]
    fn random_payload_has_right_length_and_varies() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = random_payload(PACKET_LEN, &mut rng);
        let b = random_payload(PACKET_LEN, &mut rng);
        assert_eq!(a.len(), PACKET_LEN);
        assert_ne!(a, b, "two random payloads should differ");
    }

    #[test]
    fn xor_is_involutive() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = random_payload(10, &mut rng);
        let b = random_payload(10, &mut rng);
        let c = xor_payloads(&a, &b);
        assert_eq!(xor_payloads(&c, &b), a);
        assert_eq!(xor_payloads(&c, &a), b);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn xor_rejects_mismatched() {
        let _ = xor_payloads(&vec![Gf256(1)], &vec![Gf256(1), Gf256(2)]);
    }
}
