//! Multi-round sessions: role rotation and the secret pool.
//!
//! One protocol round yields `L` secret packets. A *session* chains
//! rounds, rotating the coordinator ("we make the terminals take turns in
//! playing Alice's role", §3.2 — the coordinator rotation complements the
//! intra-round x-schedule rotation), accumulating the secrets into a pool,
//! and deriving fixed-size keys from the pool on demand (the intro's
//! "continuously refresh the key used to encrypt their communication").

use rand::rngs::StdRng;
use rand::SeedableRng;
use thinair_netsim::Medium;

use crate::error::ProtocolError;
use crate::kdf::derive_key;
use crate::round::{run_group_round, RoundConfig, RoundOutcome};
use crate::wire::payload_to_bytes;

/// A running multi-round session over a medium.
pub struct Session<M> {
    medium: M,
    n_terminals: usize,
    cfg: RoundConfig,
    rng: StdRng,
    /// Serialized secret packets accumulated across rounds.
    pool: Vec<u8>,
    rounds_run: usize,
    secret_bits_total: u64,
    bits_transmitted_total: u64,
}

/// Summary of a completed round within a session.
#[derive(Clone, Debug)]
pub struct SessionRound {
    /// Which terminal coordinated.
    pub coordinator: usize,
    /// The full round outcome.
    pub outcome: RoundOutcome,
}

impl SessionRound {
    /// True iff every terminal derived the identical secret.
    pub fn all_terminals_agree(&self) -> bool {
        self.outcome.all_terminals_agree()
    }
}

impl<M: Medium> Session<M> {
    /// Creates a session for `n_terminals` terminals over `medium` (extra
    /// medium nodes are Eve antennas).
    pub fn new(n_terminals: usize, cfg: RoundConfig, medium: M, seed: u64) -> Self {
        Session {
            medium,
            n_terminals,
            cfg,
            rng: StdRng::seed_from_u64(seed),
            pool: Vec::new(),
            rounds_run: 0,
            secret_bits_total: 0,
            bits_transmitted_total: 0,
        }
    }

    /// Number of rounds completed.
    pub fn rounds_run(&self) -> usize {
        self.rounds_run
    }

    /// Total secret bits accumulated.
    pub fn secret_bits(&self) -> u64 {
        self.secret_bits_total
    }

    /// Session-wide efficiency so far.
    pub fn efficiency(&self) -> f64 {
        if self.bits_transmitted_total == 0 {
            0.0
        } else {
            self.secret_bits_total as f64 / self.bits_transmitted_total as f64
        }
    }

    /// Runs one round with an explicit coordinator.
    pub fn run_round(&mut self, coordinator: usize) -> Result<SessionRound, ProtocolError> {
        let outcome = run_group_round(
            &mut self.medium,
            self.n_terminals,
            coordinator,
            &self.cfg,
            &mut self.rng,
        )?;
        self.rounds_run += 1;
        self.secret_bits_total += outcome.secret_bits();
        self.bits_transmitted_total += outcome.stats.total();
        for pkt in outcome.secret() {
            self.pool.extend(payload_to_bytes(pkt));
        }
        Ok(SessionRound { coordinator, outcome })
    }

    /// Runs one round with the rotating coordinator
    /// (`round_number mod n`).
    pub fn run_next(&mut self) -> Result<SessionRound, ProtocolError> {
        let coordinator = self.rounds_run % self.n_terminals;
        self.run_round(coordinator)
    }

    /// Runs a full rotation (every terminal coordinates once) and returns
    /// the outcomes.
    pub fn run_rotation(&mut self) -> Result<Vec<SessionRound>, ProtocolError> {
        (0..self.n_terminals).map(|_| self.run_next()).collect()
    }

    /// Derives a labelled 32-byte key from the accumulated pool.
    ///
    /// Returns `None` while the pool is empty (no secret generated yet —
    /// the caller should fall back to the bootstrap secret).
    pub fn derive_key(&self, label: &str) -> Option<[u8; 32]> {
        if self.pool.is_empty() {
            None
        } else {
            Some(derive_key(&self.pool, label))
        }
    }

    /// Bytes of raw secret material currently pooled.
    pub fn pool_len(&self) -> usize {
        self.pool.len()
    }

    /// Consumes up to `n` bytes of pool material as a one-time pad,
    /// removing them from the pool (one-time pads must never be reused).
    pub fn take_pad(&mut self, n: usize) -> Option<Vec<u8>> {
        if self.pool.len() < n {
            return None;
        }
        let pad = self.pool.drain(..n).collect();
        Some(pad)
    }

    /// Access to the underlying medium (e.g. to inspect trace wrappers).
    pub fn medium(&self) -> &M {
        &self.medium
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::Estimator;
    use crate::round::XSchedule;
    use thinair_netsim::IidMedium;

    fn session(n: usize, p: f64, seed: u64) -> Session<IidMedium> {
        let cfg = RoundConfig {
            schedule: XSchedule::CoordinatorOnly(40),
            payload_len: 16,
            estimator: Estimator::Oracle { eve_known: Default::default() },
            ..RoundConfig::default()
        };
        Session::new(n, cfg, IidMedium::symmetric(n + 1, p, seed), seed ^ 0x5A5A)
    }

    #[test]
    fn rounds_accumulate_pool() {
        let mut s = session(3, 0.4, 1);
        let r1 = s.run_next().unwrap();
        assert_eq!(r1.coordinator, 0);
        let r2 = s.run_next().unwrap();
        assert_eq!(r2.coordinator, 1);
        assert_eq!(s.rounds_run(), 2);
        let expected_bytes = (r1.outcome.l + r2.outcome.l) * 16;
        assert_eq!(s.pool_len(), expected_bytes);
    }

    #[test]
    fn rotation_visits_every_coordinator() {
        let mut s = session(4, 0.4, 2);
        let rounds = s.run_rotation().unwrap();
        let coords: Vec<usize> = rounds.iter().map(|r| r.coordinator).collect();
        assert_eq!(coords, vec![0, 1, 2, 3]);
        for r in &rounds {
            assert!(r.all_terminals_agree());
        }
    }

    #[test]
    fn key_derivation_requires_material() {
        let mut s = session(3, 0.4, 3);
        assert!(s.derive_key("enc").is_none());
        s.run_next().unwrap();
        if s.pool_len() > 0 {
            let k1 = s.derive_key("enc").unwrap();
            let k2 = s.derive_key("enc").unwrap();
            assert_eq!(k1, k2);
            assert_ne!(k1, s.derive_key("mac").unwrap());
        }
    }

    #[test]
    fn take_pad_consumes_material() {
        let mut s = session(3, 0.5, 4);
        while s.pool_len() < 8 {
            s.run_next().unwrap();
        }
        let before = s.pool_len();
        let pad = s.take_pad(8).unwrap();
        assert_eq!(pad.len(), 8);
        assert_eq!(s.pool_len(), before - 8);
        assert!(s.take_pad(usize::MAX).is_none());
    }

    #[test]
    fn efficiency_accumulates() {
        let mut s = session(3, 0.5, 5);
        s.run_rotation().unwrap();
        let e = s.efficiency();
        assert!(e > 0.0 && e < 1.0, "session efficiency {e}");
        assert!(s.secret_bits() > 0);
    }
}
