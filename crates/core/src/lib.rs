//! The secret-agreement protocol of *"Creating Shared Secrets out of Thin
//! Air"* (Safaka, Fragouli, Argyraki, Diggavi — HotNets 2012).
//!
//! `n` terminals attached to the same broadcast wireless network generate
//! a *group secret* that an eavesdropper, Eve, cannot reconstruct — with
//! security resting on Eve's limited network presence (the packets her
//! receiver missed), not on computational hardness.
//!
//! # Protocol shape
//!
//! 1. **Phase 1 — pairwise secrets** ([`phase1`], [`construct`]):
//!    terminals broadcast random x-packets over the lossy channel; every
//!    terminal reports which ones it received; the coordinator ("Alice")
//!    sizes each pairwise secret with an [`estimate::Estimator`] and
//!    announces MDS-coded y-packet *identities* (never contents).
//! 2. **Phase 2 — group secret** ([`phase2`]): the coordinator publishes
//!    `M − L` z-packets (contents included) so every terminal can
//!    reconstruct all `M` y-packets, then announces the identities of `L`
//!    s-packets — the group secret — which every terminal computes
//!    locally.
//!
//! The crate also contains the *unicast baseline* the paper compares
//! against ([`unicast`]), ground-truth eavesdropper accounting and the
//! reliability metric ([`eve`]), multi-round sessions with role rotation
//! and key derivation ([`session`]), and the bootstrap-secret
//! authentication layer against active adversaries ([`auth`]).
//!
//! # Example
//!
//! ```
//! use thinair_core::round::{run_group_round, RoundConfig, XSchedule};
//! use thinair_core::estimate::{Estimator, Tuning};
//! use thinair_netsim::IidMedium;
//! use rand::{SeedableRng, rngs::StdRng};
//!
//! // 4 terminals + Eve on iid erasure channels with p = 0.5.
//! let medium = IidMedium::symmetric(5, 0.5, 7);
//! let cfg = RoundConfig {
//!     schedule: XSchedule::CoordinatorOnly(60),
//!     estimator: Estimator::LeaveOneOut(Tuning::default()),
//!     ..RoundConfig::default()
//! };
//! let mut rng = StdRng::seed_from_u64(1);
//! let outcome = run_group_round(medium, 4, 0, &cfg, &mut rng).unwrap();
//! assert!(outcome.all_terminals_agree());
//! println!(
//!     "L = {} packets, efficiency {:.3}, reliability {:.2}",
//!     outcome.l,
//!     outcome.efficiency(),
//!     outcome.reliability()
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod auth;
pub mod construct;
pub mod error;
pub mod estimate;
pub mod eve;
pub mod kdf;
pub mod packet;
pub mod pairwise;
pub mod phase1;
pub mod phase2;
pub mod round;
pub mod session;
pub mod transport;
pub mod unicast;
pub mod wire;

pub use construct::{build_block_plan, build_plan, Plan};
pub use error::ProtocolError;
pub use estimate::{Estimator, Tuning};
pub use eve::EveLedger;
pub use pairwise::{run_pairwise_round, PairwiseOutcome};
pub use round::{run_group_round, Construction, RoundConfig, RoundOutcome, XSchedule};
pub use session::{Session, SessionRound};
pub use unicast::{run_unicast_round, UnicastOutcome};
