//! Phase 1, steps 1–2: x-packet broadcast and reception reports.
//!
//! Each participating terminal broadcasts its share of random x-packets
//! (plain, unacknowledged broadcasts — erasures are the point), then every
//! non-coordinator terminal *reliably* broadcasts a bitmap of what it
//! received. Transmissions from different terminals are interleaved
//! round-robin so that one round spreads across the interference-rotation
//! patterns, like the paper's time-slotted experiments.
//!
//! The paper's baseline has only Alice transmitting (step 1: "Alice
//! transmits N packets"); §3.2's *avoiding the worst case* makes "the
//! terminals take turns in playing Alice's role". Both are expressed by
//! the per-terminal packet counts in [`Phase1Config::x_per_terminal`].

use std::collections::BTreeSet;

use rand::Rng;
use thinair_gf::PayloadPlane;
use thinair_netsim::stats::TxClass;
use thinair_netsim::{Medium, TxStats};

use crate::error::ProtocolError;
use crate::eve::EveLedger;
use crate::packet::random_payload_bytes;
use crate::wire::{bitmap_from_received, Message};

/// Phase-1 parameters.
#[derive(Clone, Debug)]
pub struct Phase1Config {
    /// How many x-packets each terminal contributes (index = terminal).
    pub x_per_terminal: Vec<usize>,
    /// Payload length in symbols (the paper: 100).
    pub payload_len: usize,
    /// Retransmission budget for each reliable broadcast.
    pub max_attempts: u32,
}

/// The shared state after phase 1: who knows which packet.
#[derive(Clone, Debug)]
pub struct XPool {
    /// Total packets broadcast.
    pub n_packets: usize,
    /// Payload length in symbols.
    pub payload_len: usize,
    /// Ground-truth payloads, one plane row per packet id.
    pub payloads: PayloadPlane,
    /// Which terminal generated each packet.
    pub owner: Vec<usize>,
    /// `known[i]`: packets terminal `i` knows (generated + received).
    pub known: Vec<BTreeSet<usize>>,
}

/// The deterministic id → owner map of the interleaved x-broadcast: ids
/// are assigned round-robin over terminals with packets remaining. Every
/// node of a distributed deployment derives the identical map from the
/// shared schedule, so x-packet ownership never goes on the air.
pub fn owner_order(x_per_terminal: &[usize]) -> Vec<usize> {
    let n_packets: usize = x_per_terminal.iter().sum();
    let mut owner = Vec::with_capacity(n_packets);
    let mut remaining = x_per_terminal.to_vec();
    while remaining.iter().any(|&r| r > 0) {
        for (t, rem) in remaining.iter_mut().enumerate() {
            if *rem > 0 {
                *rem -= 1;
                owner.push(t);
            }
        }
    }
    owner
}

/// Runs phase 1 over the given medium.
///
/// Terminals occupy medium nodes `0..n_terminals`; any further nodes are
/// treated as Eve antennas and their x-packet deliveries are recorded into
/// `eve`. Reception reports are counted against `stats` and, per the
/// paper's conservative assumption, contribute nothing to Eve's *linear*
/// knowledge (they carry no payload content).
pub fn run_phase1(
    mut medium: impl Medium,
    stats: &mut TxStats,
    eve: &mut EveLedger,
    cfg: &Phase1Config,
    n_terminals: usize,
    coordinator: usize,
    rng: &mut impl Rng,
) -> Result<XPool, ProtocolError> {
    if n_terminals < 2 {
        return Err(ProtocolError::BadConfig("need at least two terminals"));
    }
    if cfg.x_per_terminal.len() != n_terminals {
        return Err(ProtocolError::BadConfig("x_per_terminal length must equal n_terminals"));
    }
    let n_packets: usize = cfg.x_per_terminal.iter().sum();
    if n_packets == 0 {
        return Err(ProtocolError::BadConfig("no x-packets scheduled"));
    }
    if eve.n_packets() != n_packets {
        return Err(ProtocolError::BadConfig("eve ledger sized for a different pool"));
    }

    let mut payloads = PayloadPlane::with_capacity(n_packets, cfg.payload_len);
    let mut owner = Vec::with_capacity(n_packets);
    let mut known: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n_terminals];
    let eve_nodes: Vec<usize> = (n_terminals..medium.node_count()).collect();

    // Interleaved broadcast: round-robin over terminals with remaining
    // packets so the interference schedule rotates across everyone's
    // transmissions. `owner_order` is the shared id → owner map.
    for (id, &t) in owner_order(&cfg.x_per_terminal).iter().enumerate() {
        let payload = random_payload_bytes(cfg.payload_len, rng);
        let msg = Message::XPacket { id: id as u16, owner: t as u8, payload: payload.clone() };
        let bits = msg.bits();
        let delivery = medium.transmit(t, bits);
        stats.record(t, TxClass::Data, bits);
        known[t].insert(id); // the owner knows its own packet
        for (rx, known_rx) in known.iter_mut().enumerate() {
            if delivery.got(rx) {
                known_rx.insert(id);
            }
        }
        for &antenna in &eve_nodes {
            if delivery.got(antenna) {
                eve.note_x(id);
            }
        }
        payloads.push_row(&payload);
        owner.push(t);
    }

    // Reception reports: every terminal reliably broadcasts what it
    // received (its *received* set; owners are implicit in packet ids).
    // The coordinator reports too, so that every terminal can reproduce
    // the coordinator's plan deterministically from the reports plus the
    // announced seed (see `crate::phase2`).
    let _ = coordinator;
    for (t, known_t) in known.iter().enumerate() {
        let received = known_t.iter().copied().filter(|&j| owner[j] != t);
        let msg = Message::ReceptionReport {
            terminal: t as u8,
            n_packets: n_packets as u16,
            bitmap: bitmap_from_received(n_packets, received),
        };
        let targets: Vec<usize> = (0..n_terminals).filter(|&x| x != t).collect();
        crate::transport::reliable_message(
            &mut medium,
            stats,
            t,
            msg.bits(),
            &targets,
            TxClass::Control,
            cfg.max_attempts,
        )?;
    }

    Ok(XPool { n_packets, payload_len: cfg.payload_len, payloads, owner, known })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use thinair_netsim::IidMedium;

    fn cfg(x: Vec<usize>) -> Phase1Config {
        Phase1Config { x_per_terminal: x, payload_len: 10, max_attempts: 1000 }
    }

    #[test]
    fn lossless_channel_everyone_knows_everything() {
        let mut medium = IidMedium::symmetric(4, 0.0, 1); // 3 terminals + Eve
        let mut stats = TxStats::new(4);
        let mut eve = EveLedger::new(12);
        let mut rng = StdRng::seed_from_u64(2);
        let pool =
            run_phase1(&mut medium, &mut stats, &mut eve, &cfg(vec![4, 4, 4]), 3, 0, &mut rng)
                .unwrap();
        assert_eq!(pool.n_packets, 12);
        for i in 0..3 {
            assert_eq!(pool.known[i].len(), 12, "terminal {i}");
        }
        assert_eq!(eve.received().len(), 12);
        // 12 data transmissions + 2 reports (terminals 1, 2).
        assert!(stats.class_total(TxClass::Data) > 0);
        assert!(stats.class_total(TxClass::Control) > 0);
    }

    #[test]
    fn owners_always_know_their_own_packets() {
        // Fully dead channel: nobody receives anything, but owners still
        // know what they generated... though reports can't go through, so
        // phase 1 must fail on the reliable broadcast.
        let mut medium = IidMedium::symmetric(3, 1.0, 3);
        let mut stats = TxStats::new(3);
        let mut eve = EveLedger::new(4);
        let mut rng = StdRng::seed_from_u64(4);
        let err = run_phase1(&mut medium, &mut stats, &mut eve, &cfg(vec![2, 2]), 2, 0, &mut rng)
            .unwrap_err();
        assert!(matches!(err, ProtocolError::Reliable(_)));
    }

    #[test]
    fn erasures_produce_partial_knowledge() {
        let mut medium = IidMedium::symmetric(3, 0.5, 5); // 2 terminals + Eve
        let mut stats = TxStats::new(3);
        let mut eve = EveLedger::new(40);
        let mut rng = StdRng::seed_from_u64(6);
        let pool = run_phase1(&mut medium, &mut stats, &mut eve, &cfg(vec![40, 0]), 2, 0, &mut rng)
            .unwrap();
        let bob = &pool.known[1];
        assert!(bob.len() > 5 && bob.len() < 35, "bob knows {}", bob.len());
        assert!(eve.received().len() > 5 && eve.received().len() < 35);
        // Alice knows all her own packets.
        assert_eq!(pool.known[0].len(), 40);
    }

    #[test]
    fn interleaving_covers_all_owners() {
        let mut medium = IidMedium::symmetric(3, 0.0, 7);
        let mut stats = TxStats::new(3);
        let mut eve = EveLedger::new(6);
        let mut rng = StdRng::seed_from_u64(8);
        let pool = run_phase1(&mut medium, &mut stats, &mut eve, &cfg(vec![2, 4]), 2, 0, &mut rng)
            .unwrap();
        assert_eq!(pool.owner, vec![0, 1, 0, 1, 1, 1]);
    }

    #[test]
    fn config_validation() {
        let mut medium = IidMedium::symmetric(3, 0.0, 1);
        let mut stats = TxStats::new(3);
        let mut eve = EveLedger::new(0);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(matches!(
            run_phase1(&mut medium, &mut stats, &mut eve, &cfg(vec![0, 0]), 2, 0, &mut rng),
            Err(ProtocolError::BadConfig(_))
        ));
        assert!(matches!(
            run_phase1(&mut medium, &mut stats, &mut eve, &cfg(vec![1]), 2, 0, &mut rng),
            Err(ProtocolError::BadConfig(_))
        ));
    }
}
