//! The unicast baseline (paper §3.2, Figure 1's dashed curves).
//!
//! "Once Alice has created a perfect pair-wise secret with each terminal
//! Ti, she could use this secret to unicast a group secret to Ti. This
//! 'unicast' algorithm, however, has poor scalability."
//!
//! Concretely: phase 1 runs unchanged; Alice then derives, for each
//! terminal, a pairwise secret (a Cauchy privacy-amplification of their
//! shared packets sized by the estimator); she picks the *weakest*
//! terminal's pairwise secret as the group secret and, for every other
//! terminal, reliably broadcasts the group secret XOR-padded with that
//! terminal's pairwise secret. Every padded delivery costs `L` packet
//! payloads on the air — `(n−2)·L` payload transmissions in total, which
//! is what drives the efficiency to 0 as `n` grows.

use std::collections::BTreeSet;

use rand::Rng;
use thinair_gf::{Gf256, Matrix};
use thinair_netsim::stats::TxClass;
use thinair_netsim::{Medium, TxStats};

use crate::transport::reliable_message;

use crate::construct::{verify_coefficients, HallLedger, YRow};
use crate::error::ProtocolError;
use crate::estimate::Estimator;
use crate::eve::EveLedger;
use crate::packet::Payload;
use crate::phase1::{run_phase1, Phase1Config, XPool};
use crate::round::{RoundConfig, XSchedule};
use crate::wire::{payload_to_bytes, Message, SparseRow};

/// Outcome of a unicast-baseline round.
#[derive(Clone, Debug)]
pub struct UnicastOutcome {
    /// Group-secret length in packets.
    pub l: usize,
    /// Per-terminal derived secrets.
    pub secrets: Vec<Vec<Payload>>,
    /// The x-pool.
    pub pool: XPool,
    /// Bit ledger.
    pub stats: TxStats,
    /// Eve ground truth.
    pub eve: EveLedger,
    /// Group-secret rows in x-space (for reliability).
    pub secret_rows: Matrix,
}

impl UnicastOutcome {
    /// True iff every terminal derived the identical secret.
    pub fn all_terminals_agree(&self) -> bool {
        self.secrets.windows(2).all(|w| w[0] == w[1])
    }

    /// Secret size in bits.
    pub fn secret_bits(&self) -> u64 {
        (self.l * self.pool.payload_len * 8) as u64
    }

    /// Efficiency: secret bits over all transmitted bits.
    pub fn efficiency(&self) -> f64 {
        let total = self.stats.total();
        if total == 0 {
            0.0
        } else {
            self.secret_bits() as f64 / total as f64
        }
    }

    /// Reliability against the ground-truth Eve.
    pub fn reliability(&self) -> f64 {
        self.eve.reliability(&self.secret_rows)
    }
}

/// Runs one unicast-baseline round (same interface as
/// [`crate::round::run_group_round`]).
pub fn run_unicast_round(
    mut medium: impl Medium,
    n_terminals: usize,
    coordinator: usize,
    cfg: &RoundConfig,
    rng: &mut impl Rng,
) -> Result<UnicastOutcome, ProtocolError> {
    let x_per_terminal = match &cfg.schedule {
        XSchedule::CoordinatorOnly(n) => {
            let mut v = vec![0; n_terminals];
            v[coordinator] = *n;
            v
        }
        XSchedule::Uniform(per) => vec![*per; n_terminals],
        XSchedule::Explicit(v) => v.clone(),
    };
    let n_packets: usize = x_per_terminal.iter().sum();
    let mut stats = TxStats::new(medium.node_count());
    let mut eve = EveLedger::new(n_packets);
    let p1 = Phase1Config {
        x_per_terminal,
        payload_len: cfg.payload_len,
        max_attempts: cfg.max_attempts,
    };
    let pool = run_phase1(&mut medium, &mut stats, &mut eve, &p1, n_terminals, coordinator, rng)?;

    let estimator = match &cfg.estimator {
        Estimator::Oracle { .. } => Estimator::Oracle { eve_known: eve.received().clone() },
        other => other.clone(),
    };

    // Pairwise budgets and shared sets.
    let others: Vec<usize> = (0..n_terminals).filter(|&i| i != coordinator).collect();
    let mut shared: Vec<Vec<usize>> = vec![Vec::new(); n_terminals];
    let mut budget = vec![0usize; n_terminals];
    for &i in &others {
        let s: BTreeSet<usize> =
            pool.known[coordinator].intersection(&pool.known[i]).copied().collect();
        budget[i] = estimator.pair_budget(&s, &pool.known, coordinator, i).min(s.len());
        shared[i] = s.into_iter().collect();
    }

    // Joint sizing: the pads are one-time pads whose *differences* Eve
    // overhears, so the (n−1) pad blocks must be jointly uniform given
    // Eve's knowledge — the same Hall condition the group construction
    // enforces, here over per-terminal block supports. Find the largest L
    // for which (n−1)·L rows fit.
    let views = estimator.views(&pool.known, pool.n_packets);
    let mut l = others.iter().map(|&i| budget[i]).min().unwrap_or(0);
    'size: while l > 0 {
        let mut hall = HallLedger::new(&views);
        let rows_per_terminal = l;
        for &i in &others {
            for _ in 0..rows_per_terminal {
                if !hall.try_add(&shared[i]) {
                    l -= 1;
                    continue 'size;
                }
            }
        }
        break;
    }
    if l == 0 {
        return Ok(UnicastOutcome {
            l: 0,
            secrets: vec![Vec::new(); n_terminals],
            secret_rows: Matrix::zero(0, pool.n_packets),
            pool,
            stats,
            eve,
        });
    }

    // Pairwise pads: L random rows over each shared set, redrawn until
    // the generic ranks promised by the Hall check are realized.
    let mut all_rows: Vec<YRow> = Vec::new();
    let mut ok = false;
    for _ in 0..32 {
        all_rows.clear();
        let mut w = Matrix::zero(0, pool.n_packets);
        for &i in &others {
            for _ in 0..l {
                let coeffs: Vec<Gf256> = loop {
                    let c: Vec<Gf256> = (0..shared[i].len()).map(|_| Gf256(rng.gen())).collect();
                    if c.iter().any(|x| !x.is_zero()) {
                        break c;
                    }
                };
                let row = YRow { support: shared[i].clone(), coeffs };
                w.push_row(&row.dense(pool.n_packets));
                all_rows.push(row);
            }
        }
        if verify_coefficients(&w, &all_rows, &views) {
            ok = true;
            break;
        }
    }
    if !ok {
        return Err(ProtocolError::ConstructionFailed("could not draw full-rank unicast pads"));
    }

    // Split the stacked rows back into per-terminal blocks.
    let mut pad_rows: Vec<Matrix> = vec![Matrix::zero(0, 0); n_terminals];
    let mut pads: Vec<Vec<Payload>> = vec![Vec::new(); n_terminals];
    let mut announce_rows: Vec<SparseRow> = Vec::new();
    for (blk, &i) in others.iter().enumerate() {
        let rows_i = &all_rows[blk * l..(blk + 1) * l];
        let mut dense = Matrix::zero(0, pool.n_packets);
        for row in rows_i {
            dense.push_row(&row.dense(pool.n_packets));
            announce_rows.push(SparseRow {
                support: row.support.iter().map(|&j| j as u16).collect(),
                coeffs: row.coeffs.iter().map(|c| c.value()).collect(),
            });
        }
        // Pad payloads (both Alice and terminal i can compute these).
        pads[i] = rows_i
            .iter()
            .map(|row| {
                let mut acc = vec![0u8; pool.payload_len];
                for (&j, &c) in row.support.iter().zip(row.coeffs.iter()) {
                    thinair_gf::kernel::axpy(&mut acc, pool.payloads.row(j), c.value());
                }
                acc.into_iter().map(Gf256).collect()
            })
            .collect();
        pad_rows[i] = dense;
    }

    // Announce all pairwise coefficient vectors (identities only).
    let targets: Vec<usize> = others.clone();
    let announce = Message::YAnnounce { rows: announce_rows };
    reliable_message(
        &mut medium,
        stats_mut(&mut stats),
        coordinator,
        announce.bits(),
        &targets,
        TxClass::Control,
        cfg.max_attempts,
    )?;

    // The group secret = the weakest terminal's pairwise secret.
    let weakest = *others.iter().min_by_key(|&&i| budget[i]).expect("at least one terminal");
    let secret: Vec<Payload> = pads[weakest].clone();
    let secret_rows = pad_rows[weakest].clone();

    // Unicast deliveries: for every other terminal, broadcast secret ⊕ pad.
    for &i in &others {
        if i == weakest {
            continue;
        }
        let padded: Vec<Vec<u8>> = secret
            .iter()
            .zip(pads[i].iter())
            .map(|(s, p)| payload_to_bytes(&crate::packet::xor_payloads(s, p)))
            .collect();
        let msg = Message::PadDelivery { terminal: i as u8, payloads: padded };
        reliable_message(
            &mut medium,
            stats_mut(&mut stats),
            coordinator,
            msg.bits(),
            &targets,
            TxClass::Control,
            cfg.max_attempts,
        )?;
        // Eve hears the padded contents: rows (secret_rows + pad_rows_i).
        for r in 0..l {
            let combined: Vec<Gf256> =
                (0..pool.n_packets).map(|c| secret_rows[(r, c)] + pad_rows[i][(r, c)]).collect();
            eve.note_public_row(&combined);
        }
    }

    // Terminals derive the secret.
    let mut secrets: Vec<Vec<Payload>> = vec![Vec::new(); n_terminals];
    secrets[coordinator] = secret.clone();
    for &i in &others {
        secrets[i] = if i == weakest {
            pads[i].clone()
        } else {
            // secret = padded ⊕ pad_i; both sides have the same values in
            // simulation, so recompute from ground truth the terminal has.
            secret
                .iter()
                .zip(pads[i].iter())
                .map(|(s, p)| {
                    let padded = crate::packet::xor_payloads(s, p);
                    crate::packet::xor_payloads(&padded, p)
                })
                .collect()
        };
    }

    Ok(UnicastOutcome { l, secrets, secret_rows, pool, stats, eve })
}

// Helper so the borrow of `stats` in closures stays simple.
fn stats_mut(stats: &mut TxStats) -> &mut TxStats {
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::round::{run_group_round, RoundConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use thinair_netsim::IidMedium;

    fn cfg(n: usize) -> RoundConfig {
        RoundConfig {
            schedule: XSchedule::CoordinatorOnly(n),
            payload_len: 16,
            estimator: Estimator::Oracle { eve_known: Default::default() },
            ..RoundConfig::default()
        }
    }

    #[test]
    fn unicast_round_agrees_and_is_secret() {
        let mut rng = StdRng::seed_from_u64(1);
        let medium = IidMedium::symmetric(5, 0.4, 3);
        let out = run_unicast_round(medium, 4, 0, &cfg(50), &mut rng).unwrap();
        assert!(out.l > 0);
        assert!(out.all_terminals_agree());
        assert!(
            (out.reliability() - 1.0).abs() < 1e-12,
            "oracle unicast reliability {}",
            out.reliability()
        );
    }

    #[test]
    fn unicast_is_less_efficient_than_group_for_many_terminals() {
        // Same channel conditions, n = 6: the group algorithm must beat
        // the unicast baseline (Figure 1's message).
        let mut rng = StdRng::seed_from_u64(7);
        let n = 6usize;
        let g = run_group_round(IidMedium::symmetric(n + 1, 0.5, 21), n, 0, &cfg(60), &mut rng)
            .unwrap();
        let u = run_unicast_round(IidMedium::symmetric(n + 1, 0.5, 21), n, 0, &cfg(60), &mut rng)
            .unwrap();
        assert!(g.l > 0 && u.l > 0);
        assert!(
            g.efficiency() > u.efficiency(),
            "group {} vs unicast {}",
            g.efficiency(),
            u.efficiency()
        );
    }

    #[test]
    fn empty_when_eve_hears_all() {
        let mut rng = StdRng::seed_from_u64(2);
        let medium = IidMedium::symmetric(4, 0.0, 5);
        let out = run_unicast_round(medium, 3, 0, &cfg(20), &mut rng).unwrap();
        assert_eq!(out.l, 0);
        assert_eq!(out.efficiency(), 0.0);
    }

    #[test]
    fn pads_protect_the_secret_but_leak_combinations() {
        // The padded broadcasts are known to Eve; with the oracle
        // estimator they must not reduce secrecy below L.
        let mut rng = StdRng::seed_from_u64(9);
        let medium = IidMedium::symmetric(5, 0.5, 31);
        let out = run_unicast_round(medium, 4, 0, &cfg(40), &mut rng).unwrap();
        if out.l == 0 {
            return;
        }
        assert_eq!(out.eve.secret_dims(&out.secret_rows), out.l);
    }
}
