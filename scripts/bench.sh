#!/usr/bin/env sh
# Runs the micro benchmark suite and writes the machine-readable artifact
# (BENCH_micro.json) that records the perf trajectory.
#
# Usage:
#   scripts/bench.sh             # full measurement, writes BENCH_micro.json
#   scripts/bench.sh --smoke     # few iterations (CI), writes the same file
#   BENCH_JSON_OUT=path scripts/bench.sh   # custom artifact location
set -eu

cd "$(dirname "$0")/.."

out="${BENCH_JSON_OUT:-BENCH_micro.json}"
# cargo runs benches with the package directory as cwd; anchor relative
# paths to the workspace root.
case "$out" in
    /*) ;;
    *) out="$(pwd)/$out" ;;
esac

if [ "${1:-}" = "--smoke" ]; then
    export THINAIR_BENCH_FAST=1
fi

THINAIR_BENCH_JSON="$out" cargo bench -p thinair-bench --bench micro

echo "wrote $out"
