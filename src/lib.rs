//! `thinair` — group secret agreement from wireless packet erasures.
//!
//! A full reproduction of *"Creating Shared Secrets out of Thin Air"*
//! (Safaka, Fragouli, Argyraki, Diggavi — HotNets 2012): a protocol that
//! lets `n` terminals on a shared broadcast wireless network agree on a
//! secret that an eavesdropper cannot reconstruct, with security resting on
//! the adversary's limited *network presence* instead of computational
//! hardness.
//!
//! This crate is a facade: it re-exports the workspace members so that
//! applications (and the `examples/` directory) can depend on a single
//! crate.
//!
//! * [`gf`] — GF(2^8) arithmetic and linear algebra.
//! * [`mds`] — MDS codes: Cauchy/Vandermonde matrices, Reed–Solomon.
//! * [`netsim`] — the slotted broadcast wireless simulator.
//! * [`protocol`] — the secret-agreement protocol itself.
//! * [`model`] — closed-form efficiency analytics (Figure 1).
//! * [`testbed`] — the paper's §4 deployment and experiment sweeps.
//! * [`net`] — the async runtime and `thinaird` daemon running the
//!   protocol over real UDP sockets (see `examples/net_loopback.rs`).
//! * [`scenario`] — the deterministic many-session experiment engine
//!   behind `thinaird bench-scenario` (grid sweeps, model-vs-measurement
//!   artifacts).
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs`; in short:
//!
//! ```
//! use thinair::protocol::{Estimator, RoundConfig, Session, XSchedule};
//! use thinair::netsim::IidMedium;
//!
//! // Three terminals and Eve on iid erasure channels.
//! let medium = IidMedium::symmetric(4, 0.5, 42);
//! let cfg = RoundConfig {
//!     schedule: XSchedule::CoordinatorOnly(40),
//!     estimator: Estimator::Oracle { eve_known: Default::default() },
//!     ..RoundConfig::default()
//! };
//! let mut session = Session::new(3, cfg, medium, 7);
//! let round = session.run_round(0).expect("round should complete");
//! assert!(round.all_terminals_agree());
//! ```

pub use thinair_core as protocol;
pub use thinair_gf as gf;
pub use thinair_mds as mds;
pub use thinair_model as model;
pub use thinair_net as net;
pub use thinair_netsim as netsim;
pub use thinair_scenario as scenario;
pub use thinair_testbed as testbed;
