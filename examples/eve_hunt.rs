//! Where is Eve dangerous? A reliability heat map over the testbed.
//!
//! ```sh
//! cargo run --release --example eve_hunt
//! ```
//!
//! For a fixed group of terminals, this sweeps Eve's position over every
//! free cell — and then arms her with extra antennas (§6's "biggest
//! challenge") — printing the measured reliability for each location.
//! The paper's security claim is explicitly positional ("if the adversary
//! … is located within no less than 1.75 m from any terminal"); this
//! example makes that trade visible.

use thinair::protocol::{Estimator, Tuning};
use thinair::testbed::experiment::TestbedConfig;
use thinair::testbed::{run_experiment, Placement};

fn main() {
    // Five terminals in a cross; four free cells for Eve.
    let terminals = vec![1, 3, 4, 5, 7];
    let free: Vec<usize> = (0..9).filter(|c| !terminals.contains(c)).collect();

    println!("terminals at cells {terminals:?}; candidate Eve cells {free:?}\n");
    println!("--- single-antenna Eve ---");
    println!("{:>8} {:>12} {:>12} {:>10}", "cell", "reliability", "efficiency", "L");
    let cfg = TestbedConfig {
        estimator: Estimator::LeaveOneOut(Tuning { scale: 0.75, slack: 0 }),
        seed: 31,
        ..TestbedConfig::default()
    };
    let mut per_cell = Vec::new();
    for &eve in &free {
        let placement = Placement { terminal_cells: terminals.clone(), eve_cell: eve };
        let r = run_experiment(&cfg, &placement).expect("experiment failed");
        println!("{eve:>8} {:>12.3} {:>12.4} {:>10}", r.reliability, r.efficiency, r.l);
        per_cell.push((eve, r.reliability));
    }

    // A 3x3 mini heat map ('T' = terminal, value = reliability*9 rounded).
    println!("\nheat map (rows top-to-bottom; T = terminal, 0-9 = reliability decile):");
    for row in (0..3).rev() {
        let mut line = String::from("  ");
        for col in 0..3 {
            let cell = row * 3 + col;
            if terminals.contains(&cell) {
                line.push_str(" T ");
            } else {
                let rel = per_cell.iter().find(|(c, _)| *c == cell).map(|(_, r)| *r).unwrap_or(1.0);
                line.push_str(&format!(" {} ", (rel * 9.0).round() as u32));
            }
        }
        println!("{line}");
    }

    println!("\n--- multi-antenna Eve (antennas on several free cells at once) ---");
    println!("{:>10} {:>16} {:>12} {:>6}", "antennas", "estimator", "reliability", "L");
    for k in 1..=free.len().min(3) {
        let placement = Placement { terminal_cells: terminals.clone(), eve_cell: free[0] };
        let extra: Vec<usize> = free[1..k].to_vec();
        for (name, est) in [
            ("leave-one-out", Estimator::LeaveOneOut(Tuning { scale: 0.75, slack: 0 })),
            ("k-collusion", Estimator::KCollusion { k, tuning: Tuning { scale: 0.75, slack: 0 } }),
        ] {
            let cfg = TestbedConfig {
                estimator: est,
                extra_eve_cells: extra.clone(),
                seed: 31,
                ..TestbedConfig::default()
            };
            let r = run_experiment(&cfg, &placement).expect("experiment failed");
            println!("{k:>10} {name:>16} {:>12.3} {:>6}", r.reliability, r.l);
        }
    }
    println!(
        "\ntakeaway: a stronger adversary costs secret length (the k-collusion \
         estimator shrinks L) — the paper's \"more or less conservative\" dial."
    );
}
