//! The paper's motivating application: a group of wireless users
//! consuming content together (§1 cites "the increasing tendency of
//! wireless users to consume content in groups"), continuously refreshing
//! the key that encrypts the stream — "out of thin air".
//!
//! ```sh
//! cargo run --example group_stream
//! ```
//!
//! Eight terminals on the paper's 3×3 testbed run protocol rounds with
//! rotating coordinators; the accumulated secret pool feeds a key
//! schedule (HKDF-style labels), and a chunked "video stream" is
//! encrypted with a fresh key per chunk. An in-simulation Eve records
//! everything her antenna delivers; the example reports how much of the
//! keystream material she could reconstruct (none, if all went well).

use thinair::protocol::kdf::derive_key;
use thinair::protocol::round::{RoundConfig, XSchedule};
use thinair::protocol::session::Session;
use thinair::protocol::{Estimator, Tuning};
use thinair::testbed::experiment::{build_medium, pick_coordinator, TestbedConfig};
use thinair::testbed::Placement;

fn main() {
    // The paper's full house: 8 terminals, Eve in the centre cell.
    let placement = Placement { terminal_cells: vec![0, 1, 2, 3, 5, 6, 7, 8], eve_cell: 4 };
    let testbed = TestbedConfig { seed: 99, ..TestbedConfig::default() };
    let medium = build_medium(&testbed, &placement);
    let coordinator = pick_coordinator(&placement);

    let round_cfg = RoundConfig {
        schedule: XSchedule::Uniform(testbed.x_per_terminal),
        estimator: Estimator::LeaveOneOut(Tuning { scale: 0.75, slack: 0 }),
        ..RoundConfig::default()
    };
    let mut session = Session::new(8, round_cfg, medium, 4242);

    // Stream 6 chunks; refresh the key whenever new secret material lands.
    let chunks = 6;
    let mut worst_reliability: f64 = 1.0;
    println!("streaming {chunks} chunks to the group…\n");
    for chunk in 0..chunks {
        // One protocol round per chunk (in practice: per key epoch). The
        // coordinator rotates so no single node's channel dominates.
        let round = session.run_round((coordinator + chunk) % 8).expect("protocol round failed");
        worst_reliability = worst_reliability.min(round.outcome.reliability());
        assert!(round.all_terminals_agree(), "group out of sync");

        match session.derive_key(&format!("stream-chunk-{chunk}")) {
            Some(key) => {
                // "Encrypt" the chunk (demo: key fingerprint only).
                println!(
                    "chunk {chunk}: +{:>2} secret packets this round, pool {:>5} B, \
                     key {:02x}{:02x}{:02x}{:02x}…, reliability {:.2}",
                    round.outcome.l,
                    session.pool_len(),
                    key[0],
                    key[1],
                    key[2],
                    key[3],
                    round.outcome.reliability(),
                );
            }
            None => println!(
                "chunk {chunk}: no secret material yet (L = {}), falling back to bootstrap key",
                round.outcome.l
            ),
        }
    }

    println!(
        "\nsession totals: {} rounds, {} secret bits, efficiency {:.4}",
        session.rounds_run(),
        session.secret_bits(),
        session.efficiency()
    );
    println!("worst per-round reliability against the recorded Eve: {worst_reliability:.3}");
    println!("secret rate at 1 Mbps: ~{:.1} kbps", session.efficiency() * 1_000.0);

    // Show key separation: different labels, unrelated keys.
    if session.pool_len() > 0 {
        let a = session.derive_key("audio").unwrap();
        let b = session.derive_key("video").unwrap();
        assert_ne!(a, b);
        // And a one-time pad can be drawn destructively from the pool.
        let pad = session.take_pad(8.min(session.pool_len()));
        println!("drew a {}-byte one-time pad from the pool", pad.map_or(0, |p| p.len()));
    }
    let _ = derive_key; // re-exported for applications; used above via session
}
