//! Quickstart: three terminals and an eavesdropper agree on a group
//! secret over a lossy broadcast medium.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! This is the paper's core loop in miniature: x-packets fly, erasures
//! happen, reception reports are exchanged, the coordinator announces an
//! MDS plan, and everyone — except Eve — ends up with the same secret
//! bits.

use rand::rngs::StdRng;
use rand::SeedableRng;
use thinair::netsim::IidMedium;
use thinair::protocol::round::{run_group_round, RoundConfig, XSchedule};
use thinair::protocol::Estimator;

fn main() {
    // 3 terminals (nodes 0..3) + Eve (node 3) on symmetric iid erasure
    // channels with p = 0.5 — every link drops every packet with
    // probability one half, independently.
    let n_terminals = 3;
    let medium = IidMedium::symmetric(n_terminals + 1, 0.5, 2024);

    let cfg = RoundConfig {
        // Alice broadcasts 60 x-packets.
        schedule: XSchedule::CoordinatorOnly(60),
        // Ground-truth estimator: this demo focuses on the mechanics.
        // Swap in `Estimator::LeaveOneOut(Tuning::default())` for the
        // deployable variant.
        estimator: Estimator::Oracle { eve_known: Default::default() },
        ..RoundConfig::default()
    };

    let mut rng = StdRng::seed_from_u64(7);
    let outcome =
        run_group_round(medium, n_terminals, 0, &cfg, &mut rng).expect("the protocol round failed");

    println!("x-packets broadcast : {}", outcome.pool.n_packets);
    println!("y-packets planned   : {}", outcome.m);
    println!("group secret length : {} packets ({} bits)", outcome.l, outcome.secret_bits());
    println!("terminals agree     : {}", outcome.all_terminals_agree());
    println!("efficiency          : {:.4}", outcome.efficiency());
    println!("reliability         : {:.4} (1.0 = Eve learned nothing)", outcome.reliability());
    println!(
        "Eve overheard {} of {} x-packets and every public broadcast, yet \
         the secret below is uniformly random from her point of view:",
        outcome.eve.received().len(),
        outcome.pool.n_packets
    );
    let secret = outcome.secret();
    let preview: Vec<String> = secret
        .iter()
        .take(2)
        .map(|pkt| pkt.iter().take(16).map(|b| format!("{:02x}", b.value())).collect::<String>())
        .collect();
    for (i, hex) in preview.iter().enumerate() {
        println!("  s{i} = {hex}…");
    }

    assert!(outcome.all_terminals_agree());
    assert_eq!(outcome.reliability(), 1.0);
}
