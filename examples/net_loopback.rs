//! From simulation to sockets: the same protocol round three ways.
//!
//! 1. The synchronous omniscient simulation (`run_group_round`) — the
//!    reproduction used for the paper's figures.
//! 2. The distributed async state machines over the *simulated* medium
//!    (`SimTransport`): real message passing, simulated losses.
//! 3. The identical state machines over real loopback UDP sockets with
//!    receiver-side erasure injection.
//!
//! Run: `cargo run --example net_loopback`

use thinair::net::demo::{loopback_round, sim_round};
use thinair::net::session::SessionConfig;
use thinair::netsim::IidMedium;
use thinair::protocol::round::{run_group_round, RoundConfig, XSchedule};
use thinair::protocol::{Estimator, Tuning};

fn main() {
    let n_terminals = 4;

    // --- 1. The omniscient simulation --------------------------------
    let cfg = RoundConfig {
        schedule: XSchedule::CoordinatorOnly(60),
        payload_len: 24,
        estimator: Estimator::LeaveOneOut(Tuning::default()),
        ..RoundConfig::default()
    };
    let medium = IidMedium::symmetric(n_terminals + 1, 0.4, 7);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
    let out = run_group_round(medium, n_terminals, 0, &cfg, &mut rng).unwrap();
    println!(
        "simulation:    L = {:>2}, agree = {}, efficiency = {:.3}",
        out.l,
        out.all_terminals_agree(),
        out.efficiency()
    );

    // --- 2. Distributed state machines over the simulated medium -----
    let net_cfg = SessionConfig {
        n_nodes: n_terminals as u8,
        payload_len: 24,
        drop_prob: 0.0, // the medium supplies the losses
        ..SessionConfig::default()
    };
    let outcomes =
        sim_round(IidMedium::symmetric(n_terminals + 1, 0.4, 2), &net_cfg, 1, 2).unwrap();
    let agree = outcomes.windows(2).all(|w| w[0].secret == w[1].secret);
    println!("sim transport: L = {:>2}, agree = {}", outcomes[0].l, agree);

    // --- 3. The same machines over real loopback UDP sockets ---------
    let udp_cfg = SessionConfig {
        n_nodes: n_terminals as u8,
        payload_len: 24,
        drop_prob: 0.4, // loopback loses nothing; inject the erasures
        ..SessionConfig::default()
    };
    let outcomes = loopback_round(&udp_cfg, 2, 3).unwrap();
    let agree = outcomes.windows(2).all(|w| w[0].secret == w[1].secret);
    println!("loopback UDP:  L = {:>2}, agree = {}", outcomes[0].l, agree);
    if let Some(key) = outcomes[0].key() {
        let hex: String = key.iter().map(|b| format!("{b:02x}")).collect();
        println!("shared key:    {hex}");
    }
}
