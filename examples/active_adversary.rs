//! Defending against an *active* Eve (paper §1–2): impersonation attempts
//! are rejected by bootstrap-keyed authentication, and the bootstrap
//! secret retires as soon as the first erasure-generated secret exists.
//!
//! ```sh
//! cargo run --example active_adversary
//! ```
//!
//! The attack modelled here is report forgery: active Eve injects a fake
//! reception report claiming a terminal received packets it did not —
//! steering Alice into building y-rows whose supports Eve fully knows.

use rand::rngs::StdRng;
use rand::SeedableRng;
use thinair::netsim::IidMedium;
use thinair::protocol::auth::Authenticator;
use thinair::protocol::round::{run_group_round, RoundConfig, XSchedule};
use thinair::protocol::wire::{bitmap_from_received, Message};
use thinair::protocol::Estimator;

fn main() {
    // --- Act 1: the group shares a small bootstrap secret out of band.
    let bootstrap = b"pre-shared 16B!!";
    let mut terminals_auth = Authenticator::new(bootstrap);
    println!("terminals initialised with a bootstrap secret (out of band)\n");

    // --- Act 2: a genuine report passes authentication.
    let genuine = Message::ReceptionReport {
        terminal: 2,
        n_packets: 40,
        bitmap: bitmap_from_received(40, (0..40).step_by(2)),
    };
    let sealed = terminals_auth.seal(&genuine);
    println!("T2's sealed report on the air: {} bytes", sealed.encode().len());
    let opened = terminals_auth.open(&sealed, 2).expect("genuine report must verify");
    assert_eq!(opened, genuine);
    println!("Alice verified T2's report: OK");

    // --- Act 3: active Eve forges a report claiming T2 heard everything
    // (which would let her predict every y-support T2 can decode).
    let eve_auth = Authenticator::new(b"eve guesses a key");
    let forged_report = Message::ReceptionReport {
        terminal: 2,
        n_packets: 40,
        bitmap: bitmap_from_received(40, 0..40),
    };
    let forged = eve_auth.seal(&forged_report);
    match terminals_auth.open(&forged, 2) {
        Err(e) => println!("Eve's forged report rejected: {e}"),
        Ok(_) => unreachable!("forgery must not verify"),
    }

    // Tampering with a genuine envelope fails too.
    if let Message::Authenticated { mut inner, tag } = sealed.clone() {
        inner[5] ^= 0x40;
        let tampered = Message::Authenticated { inner, tag };
        assert!(terminals_auth.open(&tampered, 2).is_err());
        println!("bit-flipped genuine report rejected as well");
    }

    // --- Act 4: run a real round; its output retires the bootstrap key.
    println!("\nrunning one protocol round to mint fresh secret material…");
    let cfg = RoundConfig {
        schedule: XSchedule::CoordinatorOnly(60),
        estimator: Estimator::Oracle { eve_known: Default::default() },
        ..RoundConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(17);
    let outcome = run_group_round(IidMedium::symmetric(4, 0.5, 5), 3, 0, &cfg, &mut rng)
        .expect("round failed");
    assert!(outcome.l > 0, "need fresh secret material for the demo");
    let fresh: Vec<u8> = outcome.secret().iter().flatten().map(|s| s.value()).collect();
    println!(
        "round produced {} secret packets (reliability {:.2})",
        outcome.l,
        outcome.reliability()
    );

    let old_sealed = terminals_auth.seal(&genuine);
    terminals_auth.rotate(&fresh);
    println!("authentication key rotated to erasure-generated material");
    assert!(
        terminals_auth.open(&old_sealed, 2).is_err(),
        "messages under the retired bootstrap key must no longer verify"
    );
    println!(
        "old bootstrap-keyed messages no longer verify — \"any shared secrets \
         subsequently generated through the protocol do not depend in any way \
         on the bootstrap information\" (paper §1)"
    );
}
